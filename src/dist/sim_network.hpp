// In-process simulated cluster transport — the deterministic test
// double behind the dist::Transport interface (see transport.hpp for
// the contract shared with the real TCP backend). Every payload is
// really serialized, so the byte totals the accountant reports
// (Table III/IV, Figure 2) are measured off the wire, not estimated
// from formulas.
//
// Delivery model: send() enqueues into the destination's mailbox and
// the traffic counters are charged immediately (messages are always
// consumed later in the same global iteration). receive_tagged() pops
// the matching message with the lowest (sender, per-sender sequence)
// key, NOT physical arrival order: under parallel worker execution the
// physical enqueue order is racy, and deterministic pop order is what
// keeps parallel and sequential runs bit-identical
// (tests/core/test_md_gan.cpp ParallelAndSequential). A corollary the
// protocols rely on: two sends issued by the same sender in program
// order are assigned increasing sequence numbers under one mutex, so
// per-sender FIFO holds even when sends race on the cluster thread
// pool (tests/dist/test_network.cpp SameSenderFifoUnderClusterPool).
//
// Simulated time: the SimNetwork also keeps a deterministic virtual
// clock per node, driven by the attached LinkModel (default: the zero
// model, which keeps every clock at 0 and all behavior identical to the
// clock-less transport). send() stamps each message with its arrival
// time — sender clock, plus per-link queueing/transmit/latency/jitter —
// and receive_tagged() advances the receiver's clock to
// max(own clock, message arrival). advance_time() lets callers model
// local compute. Simulated time never changes what is sent or received,
// only the timestamps; byte/message accounting is model-independent.
//
// Aggregate NIC caps: when the LinkModel carries a per-node NIC
// bandwidth cap (LinkModel::set_nic), a node's concurrent transfers
// additionally serialize through that shared interface — egress at the
// sender, ingress at the receiver — so N workers pushing feedback into
// the server contend for the server's one NIC instead of enjoying N
// independent link capacities. Nodes without a cap keep the PR 2
// independent-link behavior bit-identically.
//
// Liveness is fail-stop (paper §V, Figure 5): crash(w) drops the
// worker's queued mail, makes its future sends/receives no-ops, and
// removes it from alive_workers(). Crashed workers never come back.
// Every first crash of a worker bumps the membership epoch, modeling
// the TcpNetwork control plane's epoch bumps so engine code written
// against membership_epoch() behaves identically on either backend.
//
// All public methods are thread-safe; workers running on the cluster
// thread pool may send/receive concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "dist/link_model.hpp"
#include "dist/liveness.hpp"
#include "dist/transport.hpp"

namespace mdgan::dist {

class SimNetwork final : public Transport {
 public:
  explicit SimNetwork(std::size_t n_workers);

  std::size_t n_workers() const override { return n_workers_; }

  void begin_iteration(std::int64_t iter) override;
  void send(int from, int to, const std::string& tag,
            ByteBuffer&& payload) override;
  // Segmented sends charge exactly as their concatenation would (the
  // TCP-vs-sim totals exactness contract), after crediting the bytes
  // the refcounting shared across recipients.
  void send(int from, int to, const std::string& tag,
            SharedBuf&& payload) override;
  // Returns std::nullopt if no matching message is queued or the node
  // has crashed (never blocks: senders run in the same process).
  std::optional<Message> receive_tagged(int node,
                                        const std::string& tag) override;
  std::size_t pending(int node) const override;

  // --- traffic accounting ---------------------------------------------
  LinkTotals totals(LinkKind kind) const override;
  std::uint64_t message_count(LinkKind kind) const override;
  std::uint64_t max_ingress_per_iteration(int node) const override;

  // --- simulated time --------------------------------------------------
  // Replaces the link model. Legal at any point; only future sends are
  // affected. Setting a zero model re-disables all clock arithmetic
  // (clocks keep their current values).
  void set_link_model(LinkModel model);
  const LinkModel& link_model() const;

  double sim_time(int node) const override;
  void advance_time(int node, double seconds) override;
  // Critical path so far: max clock over the *alive* nodes (a crashed
  // worker's frozen clock must not dominate the round time forever).
  double max_sim_time() const override;

  // --- liveness --------------------------------------------------------
  void crash(int worker) override;
  bool is_alive(int node) const override;
  std::vector<int> alive_workers() const override;
  std::size_t alive_worker_count() const override;
  std::uint64_t membership_epoch() const override;

  // --- partitions ------------------------------------------------------
  // The liveness policy the partition primitive judges against (the
  // same knobs TcpOptions feeds its LivenessTracker). Unset (the
  // default, heartbeat_interval_s == 0) a partition only delays
  // delivery and nothing is ever suspected.
  void set_liveness(const LivenessConfig& cfg);
  // Deterministic twin of a real network partition: worker `w` is
  // unreachable during [from_s, until_s) of virtual time — any message
  // to or from it departing inside the window has its arrival floored
  // to until_s (the stall a stalled link produces). Judged against the
  // liveness policy eagerly (the whole window is known up front, so the
  // outcome is too): a window outlasting suspect_after_s counts one
  // suspect episode (suspects_total); one outlasting
  // suspect_after_s + grace_s hardens into eviction — crash(w) — which
  // is exactly what the TCP tracker would decide at until_s.
  void partition(int w, double from_s, double until_s);
  // Suspect episodes declared so far (mirrors suspects_total).
  std::uint64_t suspect_count() const;

 private:
  struct Stored {
    std::uint64_t seq = 0;  // per-sender sequence, assigned at send
    Message msg;
  };

  void check_node(int node) const;
  std::size_t link_index(LinkKind kind) const {
    return static_cast<std::size_t>(kind);
  }
  // Flat index of the directed link from -> to.
  std::size_t pair_index(int from, int to) const {
    return static_cast<std::size_t>(from) * (n_workers_ + 1) +
           static_cast<std::size_t>(to);
  }

  std::size_t n_workers_;
  mutable std::mutex mu_;
  std::vector<bool> alive_;                  // index 0 = server
  std::uint64_t epoch_ = 0;  // bumped once per first crash of a worker
  std::vector<std::vector<Stored>> mailbox_;  // per destination node
  std::vector<std::uint64_t> send_seq_;       // per sender node
  LinkTotals totals_[3];
  std::vector<std::uint64_t> ingress_window_;  // open window, per node
  std::vector<std::uint64_t> ingress_max_;     // closed-window max

  // Virtual clock state (all zeros under the zero model).
  LinkModel model_;
  bool model_zero_ = true;             // cached LinkModel::zero()
  std::vector<double> sim_time_;       // per node
  std::vector<double> link_busy_;      // per directed link, pair_index
  std::vector<std::uint64_t> link_seq_;  // messages ever sent per link
  std::vector<std::uint64_t> flow_seq_;  // trace flow ids, per link
  std::vector<double> nic_out_busy_;   // per node, shared egress NIC
  std::vector<double> nic_in_busy_;    // per node, shared ingress NIC

  // Partition state.
  LivenessConfig liveness_;
  struct Window {
    double from_s = 0.0;
    double until_s = 0.0;
  };
  std::vector<std::vector<Window>> partitions_;  // per node
  std::uint64_t suspect_count_ = 0;
};

// DEPRECATED: the historical name of the in-process backend, kept so
// the many tests/benches that construct the concrete simulator read
// naturally. Prefer SimNetwork (explicit about being the test double)
// or the abstract Transport seam in new code; the alias — and the
// dist/network.hpp shim that forwards here — will be removed once
// nothing spells the old name.
using Network = SimNetwork;

}  // namespace mdgan::dist
