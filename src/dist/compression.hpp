// Feedback compression for the W->C link (paper §VII-2, the Adacomp
// direction): the error feedbacks F_n are b*d floats per worker per
// iteration, and since they are gradients w.r.t. generated pixels they
// tolerate lossy encodings. Compression is applied at the serialization
// boundary, so the Table IV / Figure 2 traffic the Network records
// shrinks by exactly the wire savings.
//
// Wire format: 1 codec tag byte, then a codec-specific payload.
//   kNone         raw floats               (8B count + 4n bytes)
//   kQuantizeInt8 symmetric int8 quant     (8B count + 4B scale + n bytes)
//   kTopK         magnitude top-k sparsify (8B n + 8B k + k*(4B idx + 4B val))
// decompress() dispatches on the tag, so a stream is self-describing
// and a receiver needs no out-of-band codec agreement.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.hpp"

namespace mdgan::dist {

enum class CompressionKind : std::uint8_t {
  kNone = 0,
  kQuantizeInt8 = 1,
  kTopK = 2,
};

const char* to_string(CompressionKind kind);

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  // Fraction of entries kept by kTopK (clamped to (0, 1]; at least one
  // entry is always kept). Ignored by the other codecs.
  float top_k_fraction = 0.1f;
};

// Encodes `values` into `out` (appended after whatever the caller
// already framed, e.g. a batch id).
void compress(const std::vector<float>& values, const CompressionConfig& cfg,
              ByteBuffer& out);

// Decodes one compress() record from `in`. Top-k records decode to the
// full-length vector with the dropped entries restored as zeros.
std::vector<float> decompress(ByteBuffer& in);

}  // namespace mdgan::dist
