// Worker availability over the course of a run. An AvailabilitySchedule
// maps global iteration numbers to membership transitions: a worker can
// leave at one iteration boundary and rejoin at a later one (the
// temporary/elastic discriminators of Qu et al., 2020), or leave and
// never return — which is exactly a fail-stop crash (paper §V,
// Figure 5). CrashSchedule below is that special case, kept as a
// subclass so crash-only call sites read as before.
//
// The schedule is *deterministic shared knowledge*: every node of a
// role-split run constructs the identical schedule from its flags and
// replays it SPMD-style, exactly like the swap schedule. That is what
// lets the swap-schedule replay skip absent workers consistently across
// processes — scheduled absences are visible to every replayer, unlike
// an unscheduled connection drop, which only the server endpoint
// observes.
//
// Semantics of a transition at iteration i: it takes effect at the
// *start* of i (the engine queries the schedule right after
// Transport::begin_iteration). A worker absent during [a, b) misses
// iterations a..b-1 and participates again from b. A leave with no
// later rejoin is permanent: the worker's shard is lost and any
// discriminator it hosts dies with it; a temporary leave keeps both —
// the discriminator lies dormant on the absent worker and resumes on
// rejoin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace mdgan::dist {

class AvailabilitySchedule {
 public:
  // A membership transition at an iteration boundary.
  struct Event {
    int worker = 0;
    bool join = false;  // false: the worker leaves at this iteration
  };

  AvailabilitySchedule() = default;
  virtual ~AvailabilitySchedule() = default;

  // Worker `worker` (1-based) is absent from the start of iteration
  // `iter` on (until a later rejoin, if any).
  void add_leave(std::int64_t iter, int worker);
  // Worker `worker` participates again from the start of `iter`.
  void add_rejoin(std::int64_t iter, int worker);
  // Convenience: absent during [from, until). until <= 0 means the
  // worker never returns (fail-stop).
  void add_absence(int worker, std::int64_t from, std::int64_t until = 0);
  // The worker CRASHES at the start of `from` — its shard and any
  // discriminator it hosts are lost, unlike a dormant add_absence — and
  // returns at the start of `until` as a state-transfer late joiner:
  // the server re-admits it with the current generator θ and a fresh
  // discriminator seeded deterministically from (worker, until). This
  // is the scheduled twin of an unscheduled kill-and-rejoin, which is
  // what lets a sim run pin a real TCP restart bit-for-bit. `until`
  // must be > `from`.
  void add_crash_rejoin(int worker, std::int64_t from, std::int64_t until);

  // Is the worker scheduled present at iteration `iter`? (Workers start
  // present; iter < 1 is the initial state.)
  bool present(int worker, std::int64_t iter) const;
  // Is the worker scheduled present at any iteration > `iter`? False
  // for a permanently-departed worker — the fail-stop test.
  bool returns_after(int worker, std::int64_t iter) const;
  // Transitions that take effect at `iter` (ascending worker id). Only
  // actual state changes are reported: a rejoin of a present worker or
  // a second leave of an absent one is not an event.
  std::vector<Event> events_at(std::int64_t iter) const;

  // Does worker's scheduled leave at `iter` lose its state (a
  // crash-rejoin departure)? Only true exactly at the leave iteration.
  bool loses_state_at(int worker, std::int64_t iter) const;
  // Does worker's scheduled return at `iter` carry a state transfer
  // (the `until` boundary of an add_crash_rejoin)? The engine then
  // re-admits (fresh discriminator, `!state` shipping) instead of
  // waking a dormant one.
  bool state_rejoin_at(int worker, std::int64_t iter) const;
  // Is `iter` inside one of worker's scheduled crash-rejoin absences
  // [from, until]? `until` itself counts — that is the admission
  // boundary. The engine uses this to classify a transport-level rejoin
  // grant as already owned by the schedule (the scheduled readmit
  // absorbs it) versus an unscheduled restart it must admit itself.
  bool within_crash_rejoin(int worker, std::int64_t iter) const;

  bool empty() const { return transitions_.empty(); }
  // Number of scheduled transitions.
  std::size_t size() const;
  // True when no worker ever rejoins — the schedule is pure fail-stop
  // and equivalent to a CrashSchedule.
  bool fail_stop_only() const;

 private:
  // Per worker: iteration -> present from that iteration on. Absent
  // keys inherit the previous state; before the first key a worker is
  // present.
  std::map<int, std::map<std::int64_t, bool>> transitions_;
  // Per worker: crash-rejoin intervals, from -> until. Presence-wise
  // these are ordinary absences (mirrored in transitions_); this map
  // marks which boundaries lose / re-transfer state.
  std::map<int, std::map<std::int64_t, std::int64_t>> crash_rejoins_;
};

// Fail-stop fault injection (paper §V, Figure 5): every departure is
// permanent — the paper's model has no recovery. Kept as the crash-only
// view of an AvailabilitySchedule so existing call sites (and the
// Figure 5 bench) read unchanged.
class CrashSchedule : public AvailabilitySchedule {
 public:
  CrashSchedule() = default;

  // Worker `worker` (1-based) dies at the start of iteration `iter`.
  void add(std::int64_t iter, int worker) { add_leave(iter, worker); }

  // Workers scheduled to die at `iter` (empty if none).
  std::vector<int> crashes_at(std::int64_t iter) const;

  // The Figure 5 schedule: one crash every total_iters / n_workers
  // iterations (period clamped to >= 1), workers dying in id order at
  // iterations period, 2*period, ... When n_workers divides
  // total_iters the last crash lands exactly on the final iteration;
  // otherwise the tail crashes are scheduled past iteration
  // total_iters and a run of exactly that length leaves those workers
  // alive.
  static CrashSchedule evenly_spaced(std::int64_t total_iters,
                                     std::size_t n_workers);
};

}  // namespace mdgan::dist
