// Fail-stop fault injection (paper §V, Figure 5). A CrashSchedule maps
// global iteration numbers to the workers that die at that iteration's
// boundary; the training loop queries it via crashes_at() right after
// Network::begin_iteration and calls Network::crash on each victim.
// Crashes are permanent — the paper's model has no recovery — and a
// crashed worker takes its data shard and any hosted discriminator
// with it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace mdgan::dist {

class CrashSchedule {
 public:
  CrashSchedule() = default;

  // Worker `worker` (1-based) dies at the start of iteration `iter`.
  void add(std::int64_t iter, int worker);

  // Workers scheduled to die at `iter` (empty if none).
  std::vector<int> crashes_at(std::int64_t iter) const;

  bool empty() const { return by_iter_.empty(); }
  std::size_t size() const;

  // The Figure 5 schedule: one crash every total_iters / n_workers
  // iterations (period clamped to >= 1), workers dying in id order at
  // iterations period, 2*period, ... When n_workers divides
  // total_iters the last crash lands exactly on the final iteration;
  // otherwise the tail crashes are scheduled past iteration
  // total_iters and a run of exactly that length leaves those workers
  // alive.
  static CrashSchedule evenly_spaced(std::int64_t total_iters,
                                     std::size_t n_workers);

 private:
  std::map<std::int64_t, std::vector<int>> by_iter_;
};

}  // namespace mdgan::dist
