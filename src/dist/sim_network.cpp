#include "dist/sim_network.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mdgan::dist {

SimNetwork::SimNetwork(std::size_t n_workers) : n_workers_(n_workers) {
  if (n_workers_ == 0) {
    throw std::invalid_argument("SimNetwork: need at least one worker");
  }
  alive_.assign(n_workers_ + 1, true);
  mailbox_.resize(n_workers_ + 1);
  send_seq_.assign(n_workers_ + 1, 0);
  ingress_window_.assign(n_workers_ + 1, 0);
  ingress_max_.assign(n_workers_ + 1, 0);
  sim_time_.assign(n_workers_ + 1, 0.0);
  link_busy_.assign((n_workers_ + 1) * (n_workers_ + 1), 0.0);
  link_seq_.assign((n_workers_ + 1) * (n_workers_ + 1), 0);
  flow_seq_.assign((n_workers_ + 1) * (n_workers_ + 1), 0);
  nic_out_busy_.assign(n_workers_ + 1, 0.0);
  nic_in_busy_.assign(n_workers_ + 1, 0.0);
  partitions_.resize(n_workers_ + 1);
}

void SimNetwork::check_node(int node) const {
  if (node < 0 || node > static_cast<int>(n_workers_)) {
    throw std::out_of_range("SimNetwork: node id " + std::to_string(node) +
                            " outside [0, " + std::to_string(n_workers_) +
                            "]");
  }
}

void SimNetwork::begin_iteration(std::int64_t /*iter*/) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t n = 0; n < ingress_window_.size(); ++n) {
    ingress_max_[n] = std::max(ingress_max_[n], ingress_window_[n]);
    ingress_window_[n] = 0;
  }
}

void SimNetwork::send(int from, int to, const std::string& tag,
                      SharedBuf&& payload) {
  // In-process there is no iovec to exploit: credit what the sharing
  // saved and deliver the concatenation, which charges the accountant
  // byte-for-byte like the segmented TCP write does.
  obs_broadcast_saved(payload.shared_bytes());
  send(from, to, tag, payload.concat());
}

void SimNetwork::send(int from, int to, const std::string& tag,
                      ByteBuffer&& payload) {
  check_node(from);
  check_node(to);
  const LinkKind kind = link_kind(from, to);
  const std::size_t n_bytes = payload.size();
  // Trace bookkeeping captured under the lock, emitted after it: the
  // tracer must never be called while mu_ is held (its sim-clock
  // callbacks may re-enter sim_time()).
  obs::Tracer* tracer = obs_tracer();
  double depart_s = -1.0, arrive_s = -1.0;
  std::uint64_t flow = 0;
  const std::int64_t wall_t0 = tracer != nullptr ? tracer->now_ns() : 0;
  {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_[static_cast<std::size_t>(from)] ||
      !alive_[static_cast<std::size_t>(to)]) {
    return;  // fail-stop: a dead endpoint moves no bytes
  }
  auto& t = totals_[link_index(kind)];
  t.bytes += payload.size();
  t.messages += 1;
  obs_charge(kind, tag, payload.size());
  ingress_window_[static_cast<std::size_t>(to)] += payload.size();

  // Virtual clock: the message departs at the sender's current time and
  // arrives after queueing behind earlier traffic on the same link (and,
  // when NIC caps are configured, behind the sender's other outgoing and
  // the receiver's other incoming transfers) plus the link's
  // transmit/latency/jitter cost. Zero model: arrival == sender clock,
  // no link state touched (clocks stay wherever advance_time left them,
  // i.e. all-zero by default).
  double arrival = sim_time_[static_cast<std::size_t>(from)];
  if (!model_zero_) {
    const std::size_t li = pair_index(from, to);
    const LinkDelay d =
        model_.delay(from, to, payload.size(), link_seq_[li]++);
    double start = std::max(arrival, link_busy_[li]);
    double transmit = d.transmit_s;
    // A capped NIC is one shared serializing resource per node: the
    // transfer must wait for it to free and holds it for the whole
    // transmit, whose duration is governed by the slowest resource on
    // the path (link, sender NIC, receiver NIC). Uncapped nodes skip
    // this entirely, preserving the independent-link behavior.
    const double out_rate = model_.nic_bytes_per_s(from);
    const double in_rate = model_.nic_bytes_per_s(to);
    const auto bytes = static_cast<double>(payload.size());
    if (out_rate > 0.0) {
      start = std::max(start, nic_out_busy_[static_cast<std::size_t>(from)]);
      transmit = std::max(transmit, bytes / out_rate);
    }
    if (in_rate > 0.0) {
      start = std::max(start, nic_in_busy_[static_cast<std::size_t>(to)]);
      transmit = std::max(transmit, bytes / in_rate);
    }
    link_busy_[li] = start + transmit;
    if (out_rate > 0.0) {
      nic_out_busy_[static_cast<std::size_t>(from)] = start + transmit;
    }
    if (in_rate > 0.0) {
      nic_in_busy_[static_cast<std::size_t>(to)] = start + transmit;
    }
    arrival = start + transmit + d.propagation_s;
  }

  // A partitioned endpoint stalls the message: anything departing or
  // arriving inside a partition window of either end is held until the
  // window closes (the delivery a resumed link produces). Flooring the
  // arrival into one window can push it inside ANOTHER (overlapping or
  // adjacent, possibly one already iterated), so rescan until the
  // arrival reaches a fixed point.
  {
    const double depart = sim_time_[static_cast<std::size_t>(from)];
    for (;;) {
      double next = arrival;
      for (int node : {from, to}) {
        for (const Window& w : partitions_[static_cast<std::size_t>(node)]) {
          if ((depart >= w.from_s && depart < w.until_s) ||
              (next >= w.from_s && next < w.until_s)) {
            next = std::max(next, w.until_s);
          }
        }
      }
      if (next == arrival) break;
      arrival = next;
    }
  }

  depart_s = sim_time_[static_cast<std::size_t>(from)];
  arrive_s = arrival;

  // Flow id for the merged cluster trace: per-directed-link sequence,
  // assigned under mu_ so program order on one link is sequence order.
  flow = flow_id(from, to,
                 static_cast<std::uint32_t>(
                     ++flow_seq_[pair_index(from, to)]));

  Stored s;
  s.seq = send_seq_[static_cast<std::size_t>(from)]++;
  s.msg.from = from;
  s.msg.tag = tag;
  s.msg.payload = std::move(payload);
  s.msg.arrival_s = arrival;
  s.msg.flow = flow;
  mailbox_[static_cast<std::size_t>(to)].push_back(std::move(s));
  }  // mu_ released before touching the tracer

  if (tracer != nullptr) {
    obs::TraceEvent ev;
    std::snprintf(ev.name, obs::TraceEvent::kNameCap, "send:%s", tag.c_str());
    ev.cat = obs::Cat::kNet;
    ev.node = from;
    ev.wall_t0_ns = wall_t0;
    ev.wall_dur_ns = tracer->now_ns() - wall_t0;
    ev.sim_t0 = depart_s;
    ev.sim_t1 = arrive_s;
    ev.bytes = n_bytes;
    ev.flow = flow;
    tracer->emit(ev);
  }
}

std::optional<Message> SimNetwork::receive_tagged(int node,
                                                  const std::string& tag) {
  check_node(node);
  obs::Tracer* tracer = obs_tracer();
  const std::int64_t wall_t0 = tracer != nullptr ? tracer->now_ns() : 0;
  std::optional<Message> out;
  double clock_after = -1.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!alive_[static_cast<std::size_t>(node)]) return std::nullopt;
    auto& box = mailbox_[static_cast<std::size_t>(node)];
    auto best = box.end();
    for (auto it = box.begin(); it != box.end(); ++it) {
      if (it->msg.tag != tag) continue;
      if (best == box.end() || it->msg.from < best->msg.from ||
          (it->msg.from == best->msg.from && it->seq < best->seq)) {
        best = it;
      }
    }
    if (best == box.end()) return std::nullopt;
    out = std::move(best->msg);
    box.erase(best);
    // Consuming a message is the receiver's next event: its clock jumps
    // forward to the arrival time (never backward — the receiver may
    // already be later because of advance_time or an earlier arrival).
    auto& clock = sim_time_[static_cast<std::size_t>(node)];
    clock = std::max(clock, out->arrival_s);
    clock_after = clock;
  }  // mu_ released before touching the tracer

  if (tracer != nullptr) {
    obs::TraceEvent ev;
    std::snprintf(ev.name, obs::TraceEvent::kNameCap, "recv:%s", tag.c_str());
    ev.cat = obs::Cat::kNet;
    ev.node = node;
    ev.wall_t0_ns = wall_t0;
    ev.wall_dur_ns = tracer->now_ns() - wall_t0;
    ev.sim_t0 = out->arrival_s;
    ev.sim_t1 = clock_after;
    ev.bytes = out->payload.size();
    ev.flow = out->flow;
    tracer->emit(ev);
  }
  return out;
}

std::size_t SimNetwork::pending(int node) const {
  check_node(node);
  std::lock_guard<std::mutex> lock(mu_);
  return mailbox_[static_cast<std::size_t>(node)].size();
}

LinkTotals SimNetwork::totals(LinkKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_[link_index(kind)];
}

std::uint64_t SimNetwork::message_count(LinkKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_[link_index(kind)].messages;
}

std::uint64_t SimNetwork::max_ingress_per_iteration(int node) const {
  check_node(node);
  std::lock_guard<std::mutex> lock(mu_);
  const auto n = static_cast<std::size_t>(node);
  return std::max(ingress_max_[n], ingress_window_[n]);
}

void SimNetwork::set_link_model(LinkModel model) {
  std::lock_guard<std::mutex> lock(mu_);
  model_ = std::move(model);
  model_zero_ = model_.zero();
}

const LinkModel& SimNetwork::link_model() const { return model_; }

double SimNetwork::sim_time(int node) const {
  check_node(node);
  std::lock_guard<std::mutex> lock(mu_);
  return sim_time_[static_cast<std::size_t>(node)];
}

void SimNetwork::advance_time(int node, double seconds) {
  check_node(node);
  if (seconds < 0.0) {
    throw std::invalid_argument("SimNetwork: cannot advance time backwards");
  }
  std::lock_guard<std::mutex> lock(mu_);
  sim_time_[static_cast<std::size_t>(node)] += seconds;
}

double SimNetwork::max_sim_time() const {
  std::lock_guard<std::mutex> lock(mu_);
  double out = sim_time_[kServerId];  // the server never crashes
  for (std::size_t n = 1; n < sim_time_.size(); ++n) {
    if (alive_[n]) out = std::max(out, sim_time_[n]);
  }
  return out;
}

void SimNetwork::crash(int worker) {
  check_node(worker);
  if (worker == kServerId) {
    throw std::invalid_argument("SimNetwork: the server cannot crash");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_[static_cast<std::size_t>(worker)]) return;  // idempotent
  alive_[static_cast<std::size_t>(worker)] = false;
  mailbox_[static_cast<std::size_t>(worker)].clear();
  ++epoch_;
  obs_peer_death(worker, sim_time_[static_cast<std::size_t>(worker)]);
  obs_membership_epoch(epoch_);
}

void SimNetwork::set_liveness(const LivenessConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  liveness_ = cfg;
}

void SimNetwork::partition(int w, double from_s, double until_s) {
  check_node(w);
  if (w == kServerId) {
    throw std::invalid_argument("SimNetwork: cannot partition the server");
  }
  if (until_s <= from_s) {
    throw std::invalid_argument("SimNetwork: empty partition window");
  }
  bool evict = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    partitions_[static_cast<std::size_t>(w)].push_back({from_s, until_s});
    // The whole window is known up front, so the liveness verdict is
    // too — judge it eagerly, exactly as the TCP tracker would after
    // the fact: silence past suspect_after_s is one suspect episode,
    // silence past the grace window is death.
    if (liveness_.enabled()) {
      const double silence = until_s - from_s;
      if (silence >= liveness_.suspect_after_s) {
        ++suspect_count_;
        obs_suspect(w);
        evict = silence >= liveness_.dead_after_s();
      }
    }
  }
  if (evict) crash(w);
}

std::uint64_t SimNetwork::suspect_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suspect_count_;
}

std::uint64_t SimNetwork::membership_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

bool SimNetwork::is_alive(int node) const {
  check_node(node);
  std::lock_guard<std::mutex> lock(mu_);
  return alive_[static_cast<std::size_t>(node)];
}

std::vector<int> SimNetwork::alive_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  out.reserve(n_workers_);
  for (std::size_t w = 1; w <= n_workers_; ++w) {
    if (alive_[w]) out.push_back(static_cast<int>(w));
  }
  return out;
}

std::size_t SimNetwork::alive_worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      std::count(alive_.begin() + 1, alive_.end(), true));
}

}  // namespace mdgan::dist
