#include "dist/cluster.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace mdgan::dist {

namespace {

// Dedicated pool for worker bodies; see the header for why this is not
// ThreadPool::global().
ThreadPool& cluster_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace

void for_each_worker(const std::vector<int>& ids,
                     const std::function<void(int)>& fn, bool parallel) {
  if (!parallel || ids.size() < 2) {
    for (int id : ids) fn(id);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(ids.size());
  for (int id : ids) {
    futs.push_back(cluster_pool().submit([&fn, id] { fn(id); }));
  }
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

double SimTimes::max_worker() const {
  double out = 0.0;
  for (double t : workers) out = std::max(out, t);
  return out;
}

double SimTimes::critical_path() const {
  return std::max(server, max_worker());
}

SimTimes operator-(const SimTimes& a, const SimTimes& b) {
  if (a.workers.size() != b.workers.size()) {
    throw std::invalid_argument("SimTimes: cluster sizes differ");
  }
  SimTimes out;
  out.server = a.server - b.server;
  out.workers.resize(a.workers.size());
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    out.workers[i] = a.workers[i] - b.workers[i];
  }
  return out;
}

SimTimes sim_times_of(const Transport& net) {
  SimTimes out;
  out.server = net.sim_time(kServerId);
  out.workers.resize(net.n_workers());
  for (std::size_t w = 1; w <= net.n_workers(); ++w) {
    out.workers[w - 1] = net.sim_time(static_cast<int>(w));
  }
  return out;
}

}  // namespace mdgan::dist
