#include "dist/cluster.hpp"

#include <exception>
#include <future>

#include "common/thread_pool.hpp"

namespace mdgan::dist {

namespace {

// Dedicated pool for worker bodies; see the header for why this is not
// ThreadPool::global().
ThreadPool& cluster_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace

void for_each_worker(const std::vector<int>& ids,
                     const std::function<void(int)>& fn, bool parallel) {
  if (!parallel || ids.size() < 2) {
    for (int id : ids) fn(id);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(ids.size());
  for (int id : ids) {
    futs.push_back(cluster_pool().submit([&fn, id] { fn(id); }));
  }
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace mdgan::dist
