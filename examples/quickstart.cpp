// Quickstart: train MD-GAN on the synthetic-digits dataset with a handful
// of simulated workers, evaluating MNIST-score (IS) and FID as training
// progresses.
//
//   ./quickstart [--workers=4] [--iters=300] [--batch=10] [--k=2]
//                [--seed=42]
//
// This is the smallest end-to-end tour of the public API: dataset ->
// i.i.d. shards -> simulated network -> MdGan -> Evaluator.
#include <cstdio>

#include "common/cli.hpp"
#include "core/complexity.hpp"
#include "core/md_gan.hpp"
#include "data/image_io.hpp"
#include "data/synthetic.hpp"
#include "dist/sim_network.hpp"
#include "metrics/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace mdgan;
  CliFlags flags(argc, argv);
  const std::size_t workers = flags.get_int("workers", 4);
  const std::int64_t iters = flags.get_int("iters", 300);
  const std::size_t batch = flags.get_int("batch", 10);
  const std::size_t k = flags.get_int("k", core::k_log_n(workers));
  const std::uint64_t seed = flags.get_int("seed", 42);

  std::printf("MD-GAN quickstart: N=%zu workers, b=%zu, k=%zu, %lld iters\n",
              workers, batch, k, static_cast<long long>(iters));

  // 1. Data: a synthetic MNIST stand-in, split i.i.d. over the workers.
  auto train = data::make_synthetic_digits(workers * 400, seed);
  auto test = data::make_synthetic_digits(512, seed + 1);
  Rng split_rng(seed);
  auto shards = data::split_iid(train, workers, split_rng);
  std::printf("dataset: %zu train images (%zu per worker), %zu test\n",
              train.size(), shards[0].size(), test.size());

  // 2. Metrics: a scoring classifier trained on the same data.
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f},
                               /*eval_samples=*/256, seed);

  // 3. The MD-GAN cluster: one generator on the server, one
  //    discriminator per worker, gossip swaps every epoch.
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  core::MdGanConfig cfg;
  cfg.hp.batch = batch;
  cfg.k = k;
  dist::Network net(workers);
  core::MdGan md(arch, cfg, std::move(shards), seed, net);

  std::printf("\n%8s %10s %10s\n", "iter", "IS", "FID");
  auto initial = evaluator.evaluate(md.generator(), arch, md.codes());
  std::printf("%8d %10.3f %10.2f  (untrained)\n", 0,
              initial.inception_score, initial.fid);

  md.train(iters, std::max<std::int64_t>(iters / 5, 1),
           [&](std::int64_t it, nn::Sequential& g) {
             auto s = evaluator.evaluate(g, arch, md.codes());
             std::printf("%8lld %10.3f %10.2f\n",
                         static_cast<long long>(it), s.inception_score,
                         s.fid);
           });

  // 4. Dump a sample grid next to the real data for visual comparison.
  {
    Rng sample_rng(seed + 2);
    std::vector<int> labels;
    Tensor z = gan::sample_latent(arch, md.codes(), 32, sample_rng, labels);
    Tensor fake = md.generator().forward(z, false);
    data::write_image_grid("quickstart_generated.pgm", fake,
                           train.meta(), 32);
    std::vector<int> rl;
    Tensor real = train.sample_batch(sample_rng, 32, &rl);
    data::write_image_grid("quickstart_real.pgm", real, train.meta(), 32);
    std::printf("\nwrote quickstart_generated.pgm / quickstart_real.pgm\n");
  }

  // 5. What moved over the wire (the paper's Table III in action).
  std::printf("\ntraffic after %lld iterations:\n",
              static_cast<long long>(md.iterations_run()));
  std::printf("  C->W %s   W->C %s   W->W %s\n",
              core::human_bytes(
                  net.totals(dist::LinkKind::kServerToWorker).bytes)
                  .c_str(),
              core::human_bytes(
                  net.totals(dist::LinkKind::kWorkerToServer).bytes)
                  .c_str(),
              core::human_bytes(
                  net.totals(dist::LinkKind::kWorkerToWorker).bytes)
                  .c_str());
  return 0;
}
