// Head-to-head: standalone GAN vs FL-GAN vs MD-GAN on the same synthetic
// dataset and the same evaluator — a miniature of the paper's Figure 3
// comparison, with the Table III traffic printed alongside.
//
//   ./fl_vs_md [--workers=4] [--iters=200] [--batch=10] [--dataset=digits]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "core/complexity.hpp"
#include "core/md_gan.hpp"
#include "data/synthetic.hpp"
#include "dist/sim_network.hpp"
#include "gan/fl_gan.hpp"
#include "metrics/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace mdgan;
  CliFlags flags(argc, argv);
  const std::size_t workers = flags.get_int("workers", 4);
  const std::int64_t iters = flags.get_int("iters", 200);
  const std::size_t batch = flags.get_int("batch", 10);
  const std::string dataset = flags.get("dataset", "digits");
  const std::uint64_t seed = flags.get_int("seed", 7);

  auto train = data::make_dataset_by_name(dataset, workers * 300, seed);
  auto test = data::make_dataset_by_name(dataset, 400, seed + 1);
  auto arch = gan::make_arch(dataset == "cifar" ? gan::ArchKind::kCnnCifar
                                                : gan::ArchKind::kMlpMnist);
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256, seed);

  gan::GanHyperParams hp;
  hp.batch = batch;

  std::printf("%-18s %10s %10s %14s %14s\n", "competitor", "IS", "FID",
              "C<->W bytes", "W<->W bytes");

  // Standalone GAN sees the whole dataset, no network.
  {
    gan::StandaloneGan alone(arch, hp, seed);
    alone.train(train, iters);
    auto s = evaluator.evaluate(alone.generator(), arch, alone.codes());
    std::printf("%-18s %10.3f %10.2f %14s %14s\n", "standalone",
                s.inception_score, s.fid, "0", "0");
  }

  // FL-GAN: full GAN per worker, model averaging every epoch.
  {
    Rng split_rng(seed);
    auto shards = data::split_iid(train, workers, split_rng);
    dist::Network net(workers);
    gan::FlGanConfig cfg;
    cfg.hp = hp;
    gan::FlGan fl(arch, cfg, std::move(shards), seed, net);
    fl.train(iters);
    auto g = fl.server_generator();
    auto s = evaluator.evaluate(g, arch, fl.codes());
    const auto cw = net.totals(dist::LinkKind::kServerToWorker).bytes +
                    net.totals(dist::LinkKind::kWorkerToServer).bytes;
    std::printf("%-18s %10.3f %10.2f %14s %14s\n", "fl-gan",
                s.inception_score, s.fid, core::human_bytes(cw).c_str(),
                "0");
  }

  // MD-GAN: single generator, swapped discriminators.
  for (std::size_t k : {std::size_t{1}, core::k_log_n(workers)}) {
    Rng split_rng(seed);
    auto shards = data::split_iid(train, workers, split_rng);
    dist::Network net(workers);
    core::MdGanConfig cfg;
    cfg.hp = hp;
    cfg.k = k;
    core::MdGan md(arch, cfg, std::move(shards), seed, net);
    md.train(iters);
    auto s = evaluator.evaluate(md.generator(), arch, md.codes());
    const auto cw = net.totals(dist::LinkKind::kServerToWorker).bytes +
                    net.totals(dist::LinkKind::kWorkerToServer).bytes;
    const auto ww = net.totals(dist::LinkKind::kWorkerToWorker).bytes;
    char label[32];
    std::snprintf(label, sizeof label, "md-gan (k=%zu)", k);
    std::printf("%-18s %10.3f %10.2f %14s %14s\n", label,
                s.inception_score, s.fid, core::human_bytes(cw).c_str(),
                core::human_bytes(ww).c_str());
    if (k == core::k_log_n(workers) && core::k_log_n(workers) == 1) break;
  }
  return 0;
}
