// mdgan_node: one node of a real MD-GAN deployment, speaking the TCP
// transport. Launch one server and N workers — on one machine via
// 127.0.0.1 or on N+1 machines — and the same protocol the simulator
// runs executes as real processes:
//
//   ./mdgan_node --role=server --workers=2 --port=29471
//   ./mdgan_node --role=worker --id=1 --connect=host:29471 --workers=2
//   ./mdgan_node --role=worker --id=2 --connect=host:29471 --workers=2
//
// A third role replays the identical configuration on the in-process
// SimNetwork, which makes the backend swap auditable end to end:
//
//   ./mdgan_node --role=sim --workers=2
//
// prints the same generator checksum a TCP run converges to — the
// ci.sh smoke compares the two. Every role derives the dataset and its
// shard deterministically from (--seed, --workers, --shard), so no
// data moves at startup; all roles must be launched with identical
// training flags.
//
// Shared training flags: --iters, --batch, --k, --shard (samples per
// worker), --seed, --swap=0|1, --compress=none|int8|topk,
// --server-mode=sync|async (the §VII-1 server policy; async applies one
// Adam step per feedback as it arrives, with --max-staleness capping
// how stale an applied feedback may be and --staleness-damping scaling
// its learning rate by 1/(1 + damping * staleness)). --pipeline=1
// overlaps generation of round i+1 with round i's feedback drain (async
// server; sync runs stay bit-identical), and --send-queue-depth bounds
// each TCP connection's async writer queue.
//
// Observability: --trace-out=PATH writes a Chrome trace-event JSON
// (load in Perfetto / chrome://tracing: one track per node, spans for
// every round phase, local step and wire frame, stamped with wall AND
// sim time); --metrics-out=PATH appends JSONL metric snapshots every
// --metrics-interval rounds plus a final summary line whose per-link
// byte counters equal the printed traffic totals exactly;
// --trace-compute additionally records the high-frequency GEMM /
// thread-pool spans. --flight-out=PATH arms the flight recorder: a
// bounded ring of lifecycle events (deaths, suspects, rejoin grants,
// admissions, stale drops) dumped as JSONL on exit AND from the
// fatal-signal path, so a crashed node still leaves its post-mortem.
// Per-node trace files merge into one Perfetto timeline with
// cross-node flow arrows via ./mdgan_trace_merge (pass the server's
// file first). A fifth role probes a live server for a one-shot JSON
// snapshot (round, phase, epoch, liveness table, metrics registry):
//
//   ./mdgan_node --role=stats --connect=host:29471
//
// --log-level=debug|info|warn|error (also the
// MDGAN_LOG_LEVEL env var) sets the stderr log threshold, and every
// line is prefixed with elapsed seconds, level and this node's id.
//
// Elastic workers: --absent=W@FROM-UNTIL[,W@FROM-UNTIL...] schedules
// worker W away for iterations [FROM, UNTIL) — it rejoins at UNTIL; an
// empty UNTIL ("2@3-") is a permanent leave, i.e. a fail-stop crash.
// The schedule is SPMD shared knowledge: pass the identical --absent to
// every role, and each process replays the same membership transitions
// (the swap replay skips absent workers deterministically), e.g.
//
//   --absent=2@2-4   worker 2 misses iterations 2 and 3, then rejoins.
//
// Unscheduled crashes (kill -9, no schedule): the transport's control
// plane handles these — the server fail-stops the dead worker, bumps
// the membership epoch, notifies survivors (!death) and the collect
// shrinks to what is still alive. Crash-drill knobs: --recv-timeout
// bounds a blocking receive (TcpOptions.receive_timeout_s),
// --rendezvous-timeout the join deadline, --step-delay-ms sleeps each
// worker local step so a kill reliably lands mid-round, and a fourth
// role re-enters training after a death:
//
//   ./mdgan_node --role=rejoin --id=2 --connect=host:29471 --workers=2
//
// prints "rejoin: worker 2 ready=.. granted=.. epoch=.." (exit 0 iff
// the server granted the rejoin under a bumped membership epoch), then
// waits for the server's `!state` transfer, adopts it and resumes
// training at the admission round — printing "rejoin: worker 2 trained
// from=A to=B" when the resumed run completes.
//
// Robustness knobs: --dial-retries / --dial-backoff-ms bound the
// connect retry loop (workers may start before the server);
// --heartbeat-ms enables server heartbeats with --suspect-ms /
// --grace-ms controlling the alive -> suspect -> dead state machine (a
// worker silent past suspect but back within grace is re-seated, no
// death fan-out); --recv-retries / --recv-timeout-ms bound the
// churn-retry budget of every blocking protocol receive.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "core/md_gan.hpp"
#include "data/synthetic.hpp"
#include "dist/compression.hpp"
#include "dist/fault.hpp"
#include "dist/sim_network.hpp"
#include "dist/tcp_network.hpp"
#include "obs/sink.hpp"

namespace {

using namespace mdgan;

// FNV-1a over the parameter bytes: a compact fingerprint two runs can
// compare for bit-identity without shipping the whole vector around.
std::uint64_t fnv1a(const std::vector<float>& values) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(values.data());
  for (std::size_t i = 0; i < values.size() * sizeof(float); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct NodeConfig {
  std::size_t workers = 2;
  std::int64_t iters = 4;
  std::size_t shard = 16;
  std::uint64_t seed = 42;
  core::MdGanConfig cfg;
  // Scheduled leave/rejoin membership, replayed SPMD by every role.
  std::optional<dist::AvailabilitySchedule> availability;

  const dist::AvailabilitySchedule* schedule() const {
    return availability.has_value() ? &*availability : nullptr;
  }
};

// "W@FROM-UNTIL[,...]" with empty UNTIL = never returns.
dist::AvailabilitySchedule parse_absences(const std::string& spec) {
  dist::AvailabilitySchedule sched;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(at, comma - at);
    const auto at_sign = item.find('@');
    const auto dash = item.find('-', at_sign == std::string::npos
                                          ? 0
                                          : at_sign + 1);
    if (at_sign == std::string::npos || dash == std::string::npos) {
      throw std::invalid_argument("--absent wants W@FROM-UNTIL, got '" +
                                  item + "'");
    }
    const int worker = std::stoi(item.substr(0, at_sign));
    const std::int64_t from =
        std::stoll(item.substr(at_sign + 1, dash - at_sign - 1));
    const std::string until_str = item.substr(dash + 1);
    const std::int64_t until =
        until_str.empty() ? 0 : std::stoll(until_str);
    sched.add_absence(worker, from, until);
    at = comma + 1;
  }
  return sched;
}

NodeConfig parse_training_flags(const CliFlags& flags) {
  NodeConfig nc;
  nc.workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  nc.iters = flags.get_int("iters", 4);
  nc.shard = static_cast<std::size_t>(flags.get_int("shard", 16));
  nc.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  nc.cfg.hp.batch = static_cast<std::size_t>(flags.get_int("batch", 8));
  nc.cfg.hp.disc_steps = 1;
  nc.cfg.k = static_cast<std::size_t>(
      flags.get_int("k", static_cast<std::int64_t>(
                             std::min<std::size_t>(2, nc.workers))));
  nc.cfg.swap_enabled = flags.get_bool("swap", true);
  nc.cfg.parallel_workers = false;
  nc.cfg.async = core::server_mode_from_name(flags.get(
                     "server-mode", "sync")) == core::ServerMode::kAsync;
  if (flags.has("max-staleness")) {
    nc.cfg.async_max_staleness =
        static_cast<std::size_t>(flags.get_int("max-staleness", -1));
  }
  nc.cfg.async_staleness_damping =
      static_cast<float>(flags.get_double("staleness-damping", 0.0));
  // Pipelined rounds: with --server-mode=async the server snapshots θ
  // and generates round i+1 while round i's feedbacks drain; in sync
  // mode the overlap is transport-level only (async connection writers)
  // and the run stays bit-identical to --pipeline=0.
  nc.cfg.pipeline = flags.get_bool("pipeline", false);
  const std::string codec = flags.get("compress", "none");
  if (codec == "int8") {
    nc.cfg.feedback_compression.kind = dist::CompressionKind::kQuantizeInt8;
  } else if (codec == "topk") {
    nc.cfg.feedback_compression.kind = dist::CompressionKind::kTopK;
  } else if (codec != "none") {
    std::fprintf(stderr, "mdgan_node: unknown --compress=%s\n",
                 codec.c_str());
    std::exit(2);
  }
  const std::string absent = flags.get("absent", "");
  if (!absent.empty()) nc.availability = parse_absences(absent);
  // Wall-clock sleep per worker local step: widens the mid-round window
  // so an external kill (the ci.sh crash drill) reliably lands between
  // a worker's receive and its feedback send.
  nc.cfg.step_delay_s = flags.get_double("step-delay-ms", 0.0) / 1000.0;
  // Churn-resilience budget of every blocking protocol receive: how
  // many membership-epoch wakeups it survives (--recv-retries) and an
  // optional wall-clock ceiling across the retries (--recv-timeout-ms,
  // 0 = unbounded). Exhaustion is a clean std::runtime_error, exit 1.
  nc.cfg.recv_churn_retries = static_cast<std::size_t>(flags.get_int(
      "recv-retries", static_cast<std::int64_t>(nc.cfg.recv_churn_retries)));
  nc.cfg.recv_total_timeout_s =
      flags.get_double("recv-timeout-ms", 0.0) / 1000.0;
  return nc;
}

// Transport knobs shared by the TCP roles. --recv-timeout matters for
// crash runs: it bounds how long the server's collect blocks on a
// worker that died without a goodbye before the liveness re-check.
dist::TcpOptions tcp_options_from(const CliFlags& flags) {
  dist::TcpOptions opts;
  opts.rendezvous_timeout_s =
      flags.get_double("rendezvous-timeout", opts.rendezvous_timeout_s);
  opts.receive_timeout_s =
      flags.get_double("recv-timeout", opts.receive_timeout_s);
  // Dial retry with bounded exponential backoff: lets workers start
  // before the server (or a rejoiner redial a briefly unreachable one).
  opts.dial_retries =
      static_cast<int>(flags.get_int("dial-retries", opts.dial_retries));
  opts.dial_backoff_ms =
      flags.get_double("dial-backoff-ms", opts.dial_backoff_ms);
  // Heartbeat liveness (server side): 0 (default) disables. A silent
  // worker becomes suspect after --suspect-ms and dead only after a
  // further --grace-ms, so a transient partition re-seats instead of
  // triggering the death fan-out.
  opts.heartbeat_interval_s = flags.get_double("heartbeat-ms", 0.0) / 1000.0;
  opts.suspect_after_s =
      flags.get_double("suspect-ms", opts.suspect_after_s * 1000.0) / 1000.0;
  opts.grace_s = flags.get_double("grace-ms", opts.grace_s * 1000.0) / 1000.0;
  // Per-connection async writer queue bound (frames); a full queue
  // backpressures the producer until the writer drains a slot.
  opts.send_queue_depth = static_cast<std::size_t>(flags.get_int(
      "send-queue-depth", static_cast<std::int64_t>(opts.send_queue_depth)));
  return opts;
}

// Every role regenerates the full dataset and splits it with the same
// seeded shuffle, so worker w's shard is identical across processes.
std::vector<data::InMemoryDataset> shards_of(const NodeConfig& nc) {
  auto full = data::make_synthetic_digits(nc.workers * nc.shard, nc.seed);
  Rng split_rng(nc.seed);
  return data::split_iid(full, nc.workers, split_rng);
}

void print_summary(const char* role, core::MdGan& md,
                   const dist::Transport& net) {
  const auto params = md.generator().flatten_parameters();
  bool finite = true;
  for (float v : params) finite = finite && std::isfinite(v);
  std::printf("%s: mode=%s updates=%lld finite=%s "
              "generator_fnv1a=%016llx\n",
              role, core::server_mode_name(md.server_mode()),
              static_cast<long long>(md.generator_updates()),
              finite ? "yes" : "NO",
              static_cast<unsigned long long>(fnv1a(params)));
  std::printf("%s: traffic c2w=%llu w2c=%llu w2w=%llu bytes, elapsed=%.3fs\n",
              role,
              static_cast<unsigned long long>(
                  net.totals(dist::LinkKind::kServerToWorker).bytes),
              static_cast<unsigned long long>(
                  net.totals(dist::LinkKind::kWorkerToServer).bytes),
              static_cast<unsigned long long>(
                  net.totals(dist::LinkKind::kWorkerToWorker).bytes),
              net.max_sim_time());
}

int run_sim(const NodeConfig& nc) {
  dist::SimNetwork net(nc.workers);
  core::MdGan md(gan::make_arch(gan::ArchKind::kMlpMnist), nc.cfg,
                 shards_of(nc), nc.seed, net, nc.schedule());
  md.train(nc.iters);
  print_summary("sim", md, net);
  return 0;
}

int run_server(const NodeConfig& nc, std::uint16_t port,
               const dist::TcpOptions& opts) {
  auto net = dist::TcpNetwork::serve(port, nc.workers, opts);
  std::printf("server: listening on 0.0.0.0:%u, waiting for %zu workers\n",
              net->port(), nc.workers);
  std::fflush(stdout);
  if (!net->wait_ready()) {
    std::fprintf(stderr, "server: rendezvous timed out\n");
    return 1;
  }
  std::printf("server: all %zu workers connected, training %lld "
              "iterations\n",
              nc.workers, static_cast<long long>(nc.iters));
  std::fflush(stdout);
  core::MdGanConfig cfg = nc.cfg;
  cfg.shard_size = nc.shard;  // the server holds no shard to derive it
  core::MdGan md(gan::make_arch(gan::ArchKind::kMlpMnist), cfg, {},
                 nc.seed, *net, nc.schedule(), core::NodeRole::server());
  md.train(nc.iters);
  print_summary("server", md, *net);
  return 0;
}

int run_worker(const NodeConfig& nc, const std::string& connect, int id,
               const dist::TcpOptions& opts) {
  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "mdgan_node: --connect wants host:port\n");
    return 2;
  }
  const std::string host = connect.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
  auto net = dist::TcpNetwork::connect(host, port, id, nc.workers, opts);
  std::printf("worker %d: connected to %s\n", id, connect.c_str());
  std::fflush(stdout);
  auto shards = shards_of(nc);
  core::MdGan md(gan::make_arch(gan::ArchKind::kMlpMnist), nc.cfg,
                 {shards[static_cast<std::size_t>(id) - 1]}, nc.seed, *net,
                 nc.schedule(), core::NodeRole::worker(id));
  md.train(nc.iters);
  std::printf("worker %d: done, %lld iterations\n", id,
              static_cast<long long>(md.iterations_run()));
  return 0;
}

// Rejoin-to-training: re-dial the cluster from a worker id that died
// mid-run. If the server grants the rejoin (instead of rejecting the id
// as a duplicate hello), wait for its `!state` transfer, adopt the
// snapshot (generator θ, holder map, swap stream, admission round) and
// RE-ENTER training at the admission round — the restarted process
// contributes feedback to every remaining round. Exit 0 iff granted
// under a bumped epoch; the "trained" line appears iff the state
// arrived and the resumed run finished.
int run_rejoin_probe(const NodeConfig& nc, const std::string& connect,
                     int id, const dist::TcpOptions& opts) {
  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "mdgan_node: --connect wants host:port\n");
    return 2;
  }
  const std::string host = connect.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
  auto net = dist::TcpNetwork::connect(host, port, id, nc.workers, opts);
  const bool ready = net->wait_ready();
  const bool granted = net->rejoin_granted();
  const auto epoch = net->membership_epoch();
  std::printf("rejoin: worker %d ready=%s granted=%s epoch=%llu\n", id,
              ready ? "yes" : "no", granted ? "yes" : "no",
              static_cast<unsigned long long>(epoch));
  std::fflush(stdout);
  if (!(ready && granted && epoch >= 1)) return 1;

  // The server ships the state at the next round boundary; bound the
  // wait by the receive timeout so a probe against an already-finished
  // run still exits cleanly (granted, but nothing left to train).
  const double wait_s =
      opts.receive_timeout_s > 0.0 ? opts.receive_timeout_s : 10.0;
  auto payload = net->wait_rejoin_state(wait_s);
  if (!payload.has_value()) {
    std::printf("rejoin: worker %d no state transfer within %.1fs "
                "(run over?)\n",
                id, wait_s);
    return 0;
  }
  auto st = core::RejoinState::decode(*payload);
  const auto admitted_at = st.admission_round;
  auto shards = shards_of(nc);
  core::MdGan md(gan::make_arch(gan::ArchKind::kMlpMnist), nc.cfg,
                 {shards[static_cast<std::size_t>(id) - 1]}, nc.seed, *net,
                 nc.schedule(), core::NodeRole::worker(id));
  md.adopt_rejoin_state(std::move(st));
  md.train_from(admitted_at, nc.iters);
  std::printf("rejoin: worker %d trained from=%lld to=%lld\n", id,
              static_cast<long long>(admitted_at),
              static_cast<long long>(md.iterations_run()));
  std::fflush(stdout);
  return 0;
}

// Live introspection: dial a running server, send a `!stats` probe and
// print the JSON snapshot it answers with — current round and phase,
// membership epoch, the per-worker liveness table and the full metrics
// registry (byte counters equal to the server's printed traffic
// totals). One shot, no join, no membership side effects.
int run_stats_probe(const std::string& connect, double timeout_s) {
  const auto colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "mdgan_node: --connect wants host:port\n");
    return 2;
  }
  const std::string host = connect.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
  const auto snap = dist::fetch_stats(host, port, timeout_s);
  if (!snap.has_value()) {
    std::fprintf(stderr, "stats: no reply from %s\n", connect.c_str());
    return 1;
  }
  std::printf("%s\n", snap->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string role = flags.get("role", "sim");
  try {
    const std::string level = flags.get("log-level", "");
    if (!level.empty()) set_log_level(log_level_from_name(level));
    const int id = static_cast<int>(flags.get_int("id", 0));
    set_log_node(role == "worker" ? "w" + std::to_string(id) : role);

    NodeConfig nc = parse_training_flags(flags);
    obs::SinkConfig sc;
    sc.trace_path = flags.get("trace-out", "");
    sc.metrics_path = flags.get("metrics-out", "");
    sc.metrics_interval = flags.get_int("metrics-interval", 1);
    sc.compute_spans = flags.get_bool("trace-compute", false);
    sc.flight_path = flags.get("flight-out", "");
    std::unique_ptr<obs::Sink> sink;
    if (!sc.trace_path.empty() || !sc.metrics_path.empty() ||
        !sc.flight_path.empty()) {
      sink = std::make_unique<obs::Sink>(sc);
      nc.cfg.sink = sink.get();
      // Serves the unwired instrumentation points (GEMM, pool fan-out);
      // their kCompute spans stay off unless --trace-compute asked.
      obs::install_global_sink(sink.get());
      // A SIGSEGV/abort still dumps the flight ring and the last
      // pre-serialized metrics snapshot before the process dies.
      obs::install_fatal_handlers();
    }

    int rc = 2;
    const dist::TcpOptions topts = tcp_options_from(flags);
    if (role == "sim") {
      rc = run_sim(nc);
    } else if (role == "server") {
      rc = run_server(
          nc, static_cast<std::uint16_t>(flags.get_int("port", 29471)),
          topts);
    } else if (role == "worker") {
      rc = run_worker(nc, flags.get("connect", "127.0.0.1:29471"), id,
                      topts);
    } else if (role == "rejoin") {
      rc = run_rejoin_probe(nc, flags.get("connect", "127.0.0.1:29471"),
                            id, topts);
    } else if (role == "stats") {
      rc = run_stats_probe(flags.get("connect", "127.0.0.1:29471"),
                           flags.get_double("stats-timeout", 5.0));
    } else {
      std::fprintf(stderr,
                   "mdgan_node: --role must be sim, server, worker, "
                   "rejoin or stats\n");
    }
    if (sink) {
      obs::install_global_sink(nullptr);
      sink->finish();  // final metrics line + the Chrome trace file
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mdgan_node(%s): %s\n", role.c_str(), e.what());
    return 1;
  }
}
