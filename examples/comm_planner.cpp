// Network dimensioning helper built on the paper's analytic cost model
// (§IV-D, Figure 2): given a GAN architecture, batch size and worker
// count, print the per-iteration/per-round traffic of MD-GAN vs FL-GAN
// at every link, plus the batch-size crossover where FL-GAN becomes
// cheaper for workers.
//
//   ./comm_planner [--arch=cnn-mnist|mlp-mnist|cnn-cifar] [--workers=10]
//                  [--batch=10]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "core/complexity.hpp"

int main(int argc, char** argv) {
  using namespace mdgan;
  CliFlags flags(argc, argv);
  const std::string arch = flags.get("arch", "cnn-cifar");
  core::GanDims dims;
  if (arch == "mlp-mnist") {
    dims = core::paper_mnist_mlp_dims();
  } else if (arch == "cnn-mnist") {
    dims = core::paper_mnist_cnn_dims();
  } else if (arch == "cnn-cifar") {
    dims = core::paper_cifar_cnn_dims();
  } else {
    std::fprintf(stderr, "unknown arch '%s'\n", arch.c_str());
    return 1;
  }
  dims.n_workers = flags.get_int("workers", 10);
  dims.batch = flags.get_int("batch", 10);
  dims.k = flags.get_int("k", 1);
  dims.iters = flags.get_int("iters", 50000);

  std::printf("arch %s: |w|=%llu |theta|=%llu d=%llu, N=%llu, b=%llu, "
              "I=%llu\n\n",
              arch.c_str(),
              static_cast<unsigned long long>(dims.gen_params),
              static_cast<unsigned long long>(dims.disc_params),
              static_cast<unsigned long long>(dims.data_dim),
              static_cast<unsigned long long>(dims.n_workers),
              static_cast<unsigned long long>(dims.batch),
              static_cast<unsigned long long>(dims.iters));

  const auto fl = core::fl_gan_comm(dims);
  const auto md = core::md_gan_comm(dims);
  std::printf("%-22s %14s %14s\n", "per-event traffic", "FL-GAN", "MD-GAN");
  auto row = [](const char* name, std::uint64_t a, std::uint64_t b) {
    std::printf("%-22s %14s %14s\n", name, core::human_bytes(a).c_str(),
                core::human_bytes(b).c_str());
  };
  row("C->W at server", fl.c_to_w_at_server, md.c_to_w_at_server);
  row("C->W at worker", fl.c_to_w_at_worker, md.c_to_w_at_worker);
  row("W->C at worker", fl.w_to_c_at_worker, md.w_to_c_at_worker);
  row("W->C at server", fl.w_to_c_at_server, md.w_to_c_at_server);
  row("W->W at worker", fl.w_to_w_at_worker, md.w_to_w_at_worker);
  std::printf("%-22s %14llu %14llu\n", "# C<->W events",
              static_cast<unsigned long long>(fl.num_cw_events),
              static_cast<unsigned long long>(md.num_cw_events));
  std::printf("%-22s %14llu %14llu\n", "# W<->W events",
              static_cast<unsigned long long>(fl.num_ww_events),
              static_cast<unsigned long long>(md.num_ww_events));

  const double crossover = core::md_fl_worker_crossover_batch(dims);
  std::printf(
      "\nworker-ingress crossover: MD-GAN is cheaper per iteration below "
      "b = %.0f\n",
      crossover);

  const auto flc = core::fl_gan_compute(dims);
  const auto mdc = core::md_gan_compute(dims);
  std::printf(
      "\nworker compute score (Table II units): FL-GAN %.3g, MD-GAN %.3g "
      "(ratio %.2f)\n",
      flc.comp_worker, mdc.comp_worker, mdc.comp_worker / flc.comp_worker);
  return 0;
}
