// Straggler simulation: the smallest tour of the simulated-time API.
// Attach a dist::LinkModel to the Network, train MD-GAN twice — once on
// a homogeneous cluster, once with one worker's bandwidth cut — and
// watch the per-round critical path (seconds on the deterministic
// virtual clock) degrade while the training math stays bit-identical.
//
//   ./straggler_sim [--workers=4] [--iters=20] [--batch=8]
//                   [--latency-ms=5] [--bandwidth-mbps=100]
//                   [--slowdown=10] [--seed=42]
#include <cstdio>

#include "common/cli.hpp"
#include "core/md_gan.hpp"
#include "data/synthetic.hpp"
#include "dist/cluster.hpp"

int main(int argc, char** argv) {
  using namespace mdgan;
  CliFlags flags(argc, argv);
  const std::size_t workers = flags.get_int("workers", 4);
  const std::int64_t iters = flags.get_int("iters", 20);
  const std::size_t batch = flags.get_int("batch", 8);
  const double latency_ms = flags.get_double("latency-ms", 5.0);
  const double mbps = flags.get_double("bandwidth-mbps", 100.0);
  const double slowdown = flags.get_double("slowdown", 10.0);
  const std::uint64_t seed = flags.get_int("seed", 42);

  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  auto train = data::make_synthetic_digits(workers * 10 * batch, seed);

  // One run = one Network with a link model + one MdGan.
  auto run = [&](double cut, const char* label) {
    Rng split_rng(seed);
    auto shards = data::split_iid(train, workers, split_rng);
    dist::Network net(workers);
    dist::LinkParams link;
    link.latency_s = dist::ms_to_s(latency_ms);
    link.bytes_per_s = dist::mbps_to_bytes_per_s(mbps);
    dist::LinkModel model(link, seed);
    if (cut != 1.0) model.slow_node(/*node=*/1, cut);
    net.set_link_model(model);

    core::MdGanConfig cfg;
    cfg.hp.batch = batch;
    cfg.k = core::k_log_n(workers);
    core::MdGan md(arch, cfg, std::move(shards), seed, net);
    md.train(iters);

    std::printf("\n%s (worker 1 bandwidth / %.0f):\n", label, cut);
    std::printf("  total simulated time %.4fs over %lld rounds\n",
                md.sim_seconds(),
                static_cast<long long>(md.iterations_run()));
    const auto& rounds = md.round_sim_seconds();
    if (!rounds.empty()) {
      std::printf("  first round %.6fs, last round %.6fs\n", rounds.front(),
                  rounds.back());
    }
    const auto clocks = dist::sim_times_of(net);
    std::printf("  node clocks: server %.4fs", clocks.server);
    for (std::size_t w = 0; w < clocks.workers.size(); ++w) {
      std::printf("  w%zu %.4fs", w + 1, clocks.workers[w]);
    }
    std::printf("\n");
    return md.sim_seconds();
  };

  std::printf("straggler simulation: N=%zu, %.3gms latency, %.3gMbit/s\n",
              workers, latency_ms, mbps);
  const double fair = run(1.0, "homogeneous cluster");
  const double slow = run(slowdown, "one straggler");
  std::printf("\nthe straggler stretches the run %.2fx — same training "
              "trajectory, later clock.\n",
              fair > 0.0 ? slow / fair : 0.0);
  return 0;
}
