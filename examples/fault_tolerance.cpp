// Fault tolerance demo (the paper's Figure 5 scenario): workers crash
// fail-stop one by one — their data shards disappear with them — while
// MD-GAN keeps training on the survivors.
//
//   ./fault_tolerance [--workers=4] [--iters=200] [--batch=10]
#include <cstdio>

#include "common/cli.hpp"
#include "core/md_gan.hpp"
#include "data/synthetic.hpp"
#include "dist/sim_network.hpp"
#include "metrics/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace mdgan;
  CliFlags flags(argc, argv);
  const std::size_t workers = flags.get_int("workers", 4);
  const std::int64_t iters = flags.get_int("iters", 200);
  const std::size_t batch = flags.get_int("batch", 10);
  const std::uint64_t seed = flags.get_int("seed", 21);

  auto train = data::make_synthetic_digits(workers * 300, seed);
  auto test = data::make_synthetic_digits(400, seed + 1);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256, seed);

  // One crash every iters/N iterations: by the end, nobody is left.
  auto crashes = dist::CrashSchedule::evenly_spaced(iters, workers);
  std::printf(
      "MD-GAN with fail-stop crashes: %zu workers, one crash every %lld "
      "iterations\n\n",
      workers, static_cast<long long>(iters / workers));

  Rng split_rng(seed);
  auto shards = data::split_iid(train, workers, split_rng);
  dist::Network net(workers);
  core::MdGanConfig cfg;
  cfg.hp.batch = batch;
  cfg.k = core::k_log_n(workers);
  core::MdGan md(arch, cfg, std::move(shards), seed, net, &crashes);

  std::printf("%8s %8s %10s %10s\n", "iter", "alive", "IS", "FID");
  md.train(iters, std::max<std::int64_t>(iters / 8, 1),
           [&](std::int64_t it, nn::Sequential& g) {
             auto s = evaluator.evaluate(g, arch, md.codes());
             std::printf("%8lld %8zu %10.3f %10.2f\n",
                         static_cast<long long>(it),
                         net.alive_worker_count(), s.inception_score,
                         s.fid);
           });

  std::printf("\nrun ended after %lld iterations with %zu alive workers\n",
              static_cast<long long>(md.iterations_run()),
              net.alive_worker_count());
  std::printf(
      "the generator survives on the server; crashed shards are lost,\n"
      "matching the paper's observation that early crashes hurt most.\n");
  return 0;
}
