// mdgan_trace_merge: fuse the per-node Chrome trace files of one
// cluster run into a single Perfetto-loadable timeline with cross-node
// flow arrows (see src/obs/trace_merge.hpp for the time-base rules):
//
//   ./mdgan_trace_merge --out=merged.json \
//       server_trace.json w1_trace.json w2_trace.json w3_trace.json
//
// Pass the server's file first: it carries the heartbeat-estimated
// clock offsets that align the worker timelines in wall mode.
// --time=virtual|wall|auto (default auto: one input = virtual, several
// = wall) overrides the time base. Prints the merge stats and exits 0
// on success.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/trace_merge.hpp"

int main(int argc, char** argv) {
  mdgan::CliFlags flags(argc, argv);
  const std::string out = flags.get("out", "");
  const std::string time = flags.get("time", "auto");
  const std::vector<std::string>& inputs = flags.positional();
  if (out.empty() || inputs.empty()) {
    std::fprintf(stderr,
                 "usage: mdgan_trace_merge --out=PATH "
                 "[--time=auto|virtual|wall] trace.json [trace.json...]\n");
    return 2;
  }
  mdgan::obs::MergeTime mode;
  if (time == "auto") {
    mode = mdgan::obs::MergeTime::kAuto;
  } else if (time == "virtual") {
    mode = mdgan::obs::MergeTime::kVirtual;
  } else if (time == "wall") {
    mode = mdgan::obs::MergeTime::kWall;
  } else {
    std::fprintf(stderr, "mdgan_trace_merge: unknown --time=%s\n",
                 time.c_str());
    return 2;
  }
  mdgan::obs::MergeStats st;
  std::string error;
  if (!mdgan::obs::merge_trace_files(inputs, mode, out, &st, &error)) {
    std::fprintf(stderr, "mdgan_trace_merge: %s\n", error.c_str());
    return 1;
  }
  std::printf("trace-merge: files=%zu events=%zu flows_bound=%zu "
              "flows_unmatched=%zu dropped_no_sim=%zu -> %s\n",
              st.files, st.events, st.flows_bound, st.flows_unmatched,
              st.dropped_no_sim, out.c_str());
  return 0;
}
