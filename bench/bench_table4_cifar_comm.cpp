// Table IV reproduction: communication costs on the CIFAR10 experiment
// (N=10 workers, b in {10,100}), three ways:
//   1. the paper's reported numbers,
//   2. our analytic model (float32, single parameter copy),
//   3. bytes measured off the simulated wire by actually running one
//      MD-GAN global iteration and one FL-GAN synchronization round with
//      the CNN-CIFAR architecture.
//
// The paper's FL-GAN rows are consistent with counting 3 tensors x
// 8 bytes per parameter (value + two Adam moments in float64); its
// MD-GAN rows are float32 single-copy. We report our uniform float32
// accounting and show the paper numbers alongside (see EXPERIMENTS.md).
#include <cstdio>

#include "common/cli.hpp"
#include "core/complexity.hpp"
#include "core/md_gan.hpp"
#include "data/synthetic.hpp"
#include "dist/sim_network.hpp"
#include "gan/fl_gan.hpp"

using namespace mdgan;

namespace {

struct MeasuredRow {
  std::uint64_t c2w_server, c2w_worker, w2c_worker, w2c_server, w2w_worker;
};

// Runs `iters` MD-GAN global iterations on the real CNN-CIFAR stack and
// returns per-event byte counts (per iteration for C<->W, per swap for
// W->W).
MeasuredRow measure_md_gan(std::size_t n, std::size_t b,
                           std::int64_t iters) {
  auto train = data::make_synthetic_cifar(n * std::max<std::size_t>(b, 16),
                                          1234);
  Rng split_rng(5);
  auto shards = data::split_iid(train, n, split_rng);
  dist::Network net(n);
  core::MdGanConfig cfg;
  cfg.hp.batch = b;
  cfg.k = 1;
  cfg.epochs_per_swap = 1;
  core::MdGan md(gan::make_arch(gan::ArchKind::kCnnCifar), cfg,
                 std::move(shards), 7, net);
  md.train(iters);
  const auto swaps = net.message_count(dist::LinkKind::kWorkerToWorker);
  MeasuredRow r{};
  r.c2w_server =
      net.totals(dist::LinkKind::kServerToWorker).bytes / iters;
  r.c2w_worker = r.c2w_server / n;
  r.w2c_server =
      net.totals(dist::LinkKind::kWorkerToServer).bytes / iters;
  r.w2c_worker = r.w2c_server / n;
  r.w2w_worker =
      swaps ? net.totals(dist::LinkKind::kWorkerToWorker).bytes / swaps : 0;
  return r;
}

MeasuredRow measure_fl_gan(std::size_t n, std::size_t b) {
  // One full round: m = b so the round length is exactly 1 iteration.
  auto train = data::make_synthetic_cifar(n * std::max<std::size_t>(b, 16),
                                          1234);
  Rng split_rng(5);
  auto shards = data::split_iid(train, n, split_rng);
  dist::Network net(n);
  gan::FlGanConfig cfg;
  cfg.hp.batch = b;
  cfg.epochs_per_round = 1;
  gan::FlGan fl(gan::make_arch(gan::ArchKind::kCnnCifar), cfg,
                std::move(shards), 7, net);
  const auto rounds = static_cast<std::int64_t>(fl.round_length());
  fl.train(rounds);  // exactly one synchronization
  MeasuredRow r{};
  r.c2w_server = net.totals(dist::LinkKind::kServerToWorker).bytes;
  r.c2w_worker = r.c2w_server / n;
  r.w2c_server = net.totals(dist::LinkKind::kWorkerToServer).bytes;
  r.w2c_worker = r.w2c_server / n;
  r.w2w_worker = 0;
  return r;
}

void print_block(const char* algo, std::size_t b, const MeasuredRow& m,
                 const core::CommTable& analytic, const char* paper_c2w_c,
                 const char* paper_c2w_w) {
  std::printf("\n-- %s, b=%zu --\n", algo, b);
  std::printf("%-14s %14s %14s %12s\n", "link", "measured", "analytic",
              "paper");
  std::printf("%-14s %14s %14s %12s\n", "C->W (C)",
              core::human_bytes(m.c2w_server).c_str(),
              core::human_bytes(analytic.c_to_w_at_server).c_str(),
              paper_c2w_c);
  std::printf("%-14s %14s %14s %12s\n", "C->W (W)",
              core::human_bytes(m.c2w_worker).c_str(),
              core::human_bytes(analytic.c_to_w_at_worker).c_str(),
              paper_c2w_w);
  std::printf("%-14s %14s %14s %12s\n", "W->C (W)",
              core::human_bytes(m.w2c_worker).c_str(),
              core::human_bytes(analytic.w_to_c_at_worker).c_str(),
              paper_c2w_w);
  std::printf("%-14s %14s %14s %12s\n", "W->C (C)",
              core::human_bytes(m.w2c_server).c_str(),
              core::human_bytes(analytic.w_to_c_at_server).c_str(),
              paper_c2w_c);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::size_t n = flags.get_int("workers", 10);
  // Measuring is exact after a single event; more iterations only
  // re-confirm the same per-event sizes.
  const std::int64_t iters = flags.get_int("iters", 1);

  std::printf("=== Table IV: communication costs, CIFAR10 experiment "
              "(N=%zu) ===\n", n);
  std::printf("measured = bytes on the simulated wire (our CPU-scaled "
              "CNN, float32 params);\nanalytic = paper formulas with the "
              "paper's parameter counts; paper = reported values.\n");
  std::printf("FL-GAN paper rows count parameters as 3 tensors x 8 B "
              "(Adam state in float64) — our wire ships one float32 "
              "copy, hence the ~6x gap on FL-GAN rows; MD-GAN rows "
              "match directly.\n");

  for (std::size_t b : {std::size_t{10}, std::size_t{100}}) {
    auto dims = core::paper_cifar_cnn_dims();
    dims.batch = b;
    dims.n_workers = n;

    auto fl_measured = measure_fl_gan(n, b);
    print_block("FL-GAN", b, fl_measured, core::fl_gan_comm(dims),
                "175 MB", "17.5 MB");

    auto md_measured = measure_md_gan(n, b, iters);
    print_block("MD-GAN", b, md_measured, core::md_gan_comm(dims),
                b == 10 ? "2.30 MB" : "23.0 MB",
                b == 10 ? "0.23 MB" : "2.30 MB");
    std::printf("%-14s %14s %14s %12s\n", "W->W (W)",
                core::human_bytes(md_measured.w2w_worker).c_str(),
                core::human_bytes(
                    core::md_gan_comm(dims).w_to_w_at_worker)
                    .c_str(),
                "6.34 MB");
  }

  std::printf("\nevent counts over the paper's full run (I=50000, "
              "m=5000, E=1):\n");
  auto d10 = core::paper_cifar_cnn_dims();
  d10.batch = 10;
  auto d100 = d10;
  d100.batch = 100;
  std::printf("  FL-GAN # C<->W: b=10 -> %llu (paper 100), b=100 -> %llu "
              "(paper 1000)\n",
              (unsigned long long)core::fl_gan_comm(d10).num_cw_events,
              (unsigned long long)core::fl_gan_comm(d100).num_cw_events);
  std::printf("  MD-GAN # C<->W: %llu (paper 50000); # W<->W: b=10 -> "
              "%llu (paper 100), b=100 -> %llu (paper 1000)\n",
              (unsigned long long)core::md_gan_comm(d10).num_cw_events,
              (unsigned long long)core::md_gan_comm(d10).num_ww_events,
              (unsigned long long)core::md_gan_comm(d100).num_ww_events);
  return 0;
}
