// Figure 2 reproduction: maximal ingress traffic per iteration as a
// function of batch size, for MNIST-GAN and CIFAR10-GAN dimensions.
// Plain lines (workers) and dotted lines (server) of the paper become
// the worker/server columns; FL-GAN is constant in b, MD-GAN linear,
// and their crossing is the "MD-GAN is competitive for smaller batch
// sizes" observation (paper: b under ~550 for MNIST, ~400 for CIFAR10).
//
// Also cross-checks the analytic worker line against bytes measured off
// the simulated wire for a few batch sizes.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/complexity.hpp"
#include "core/md_gan.hpp"
#include "data/synthetic.hpp"
#include "dist/sim_network.hpp"

using namespace mdgan;

namespace {

// Measured per-iteration worker ingress for the MLP-MNIST stack at a
// given batch size (wire bytes include the 12B framing + 4B/label
// ACGAN overhead on top of the analytic 2bd floats).
std::uint64_t measured_worker_ingress(std::size_t b) {
  const std::size_t n = 2;
  auto train = data::make_synthetic_digits(
      n * std::max<std::size_t>(b, 16), 99);
  Rng split_rng(3);
  auto shards = data::split_iid(train, n, split_rng);
  dist::Network net(n);
  core::MdGanConfig cfg;
  cfg.hp.batch = b;
  cfg.k = 1;
  cfg.swap_enabled = false;
  core::MdGan md(gan::make_arch(gan::ArchKind::kMlpMnist), cfg,
                 std::move(shards), 11, net);
  md.train(1);
  return net.max_ingress_per_iteration(1);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::size_t n = flags.get_int("workers", 10);

  std::printf("=== Figure 2: maximal ingress traffic per iteration vs "
              "batch size ===\n");
  std::printf("csv header: fig2,<dataset>,<b>,<fl_worker>,<fl_server>,"
              "<md_worker>,<md_server>  (bytes)\n");

  struct Entry {
    const char* name;
    core::GanDims dims;
  };
  std::vector<Entry> entries{
      {"mnist", core::paper_mnist_cnn_dims()},
      {"cifar10", core::paper_cifar_cnn_dims()},
  };

  const std::vector<std::size_t> batches{1,  2,   5,   10,  20,  50,
                                         100, 200, 400, 550, 700, 1000};
  for (auto& e : entries) {
    e.dims.n_workers = n;
    for (auto b : batches) {
      core::GanDims d = e.dims;
      d.batch = b;
      std::printf("fig2,%s,%zu,%llu,%llu,%llu,%llu\n", e.name, b,
                  (unsigned long long)core::fl_worker_ingress_bytes(d),
                  (unsigned long long)core::fl_server_ingress_bytes(d),
                  (unsigned long long)core::md_worker_ingress_bytes(d),
                  (unsigned long long)core::md_server_ingress_bytes(d));
    }
    std::printf("crossover,%s,b=%.0f  (paper: ~%s)\n", e.name,
                core::md_fl_worker_crossover_batch(e.dims),
                e.dims.data_dim == 784 ? "550" : "400");
  }

  std::printf("\nanalytic vs measured worker ingress (MLP-MNIST wire):\n");
  std::printf("%-8s %14s %14s\n", "b", "analytic", "measured");
  for (std::size_t b : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    core::GanDims d = core::paper_mnist_mlp_dims();
    d.batch = b;
    std::printf("%-8zu %14llu %14llu\n", b,
                (unsigned long long)core::md_worker_ingress_bytes(d),
                (unsigned long long)measured_worker_ingress(b));
  }
  std::printf("(measured = analytic 2bd floats + 24 B framing + 8 B/label "
              "ACGAN class ids)\n");
  return 0;
}
