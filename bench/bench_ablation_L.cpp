// Ablation: the number of discriminator learning steps L per global
// iteration (Algorithm 1's inner loop, inherited from the original GAN
// paper's "few gradient descent iterations"). The paper fixes L without
// sweeping it; this bench quantifies the trade-off on our stack: larger
// L means better-trained discriminators per generator update but L times
// the worker compute.
//
// Also sweeps E (epochs between discriminator swaps) — the other
// worker-side knob DESIGN.md calls out — since both shift the
// discriminator/generator balance.
#include <cstdio>

#include "bench_common.hpp"
#include "dist/sim_network.hpp"

using namespace mdgan;
using namespace mdgan::bench;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const std::size_t workers = flags.get_int("workers", 3);
  const std::int64_t iters = flags.get_int("iters", full ? 600 : 120);
  const std::uint64_t seed = flags.get_int("seed", 42);

  std::printf("=== Ablation: discriminator steps L and swap period E "
              "(MD-GAN, MLP, N=%zu, I=%lld) ===\n",
              workers, static_cast<long long>(iters));
  std::printf("csv: ablation,<param>,<value>,<IS>,<FID>\n");

  auto train = data::make_synthetic_digits(workers * 400, seed);
  auto test = data::make_synthetic_digits(512, seed + 1);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256, seed);

  for (std::size_t L : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    Rng split_rng(seed);
    auto shards = data::split_iid(train, workers, split_rng);
    dist::Network net(workers);
    core::MdGanConfig cfg;
    cfg.hp.batch = 10;
    cfg.hp.disc_steps = L;
    cfg.k = core::k_log_n(workers);
    core::MdGan md(arch, cfg, std::move(shards), seed, net);
    md.train(iters);
    auto s = evaluator.evaluate(md.generator(), arch, md.codes());
    std::printf("ablation,L,%zu,%.4f,%.4f\n", L, s.inception_score, s.fid);
    std::fflush(stdout);
  }

  for (std::size_t E : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    Rng split_rng(seed);
    auto shards = data::split_iid(train, workers, split_rng);
    dist::Network net(workers);
    core::MdGanConfig cfg;
    cfg.hp.batch = 10;
    cfg.epochs_per_swap = E;
    cfg.k = core::k_log_n(workers);
    core::MdGan md(arch, cfg, std::move(shards), seed, net);
    md.train(iters);
    auto s = evaluator.evaluate(md.generator(), arch, md.codes());
    std::printf("ablation,E,%zu,%.4f,%.4f\n", E, s.inception_score, s.fid);
    std::fflush(stdout);
  }
  return 0;
}
