// Micro benchmarks of the kernels the experiments stand on: matmul, the
// im2col-based conv, the MLP generator/discriminator forward+backward,
// the per-iteration worker feedback, swap serialization, feedback
// compression, the per-message wire path of both transports (SimNetwork
// mailbox, TCP framing, and a real loopback socket round trip), and the
// derangement draw of the swap protocol. These quantify where a global
// iteration's time goes.
//
// Self-contained harness (no google-benchmark): each bench reports
// ns/iter, GFLOP/s where the kernel has a defined flop count, and heap
// bytes/calls allocated per iteration (via the global allocation
// counters in common/alloc_tracker.hpp).
//
// Flags:
//   --tiny         shrink the measurement budget (CI smoke mode)
//   --json[=path]  also emit machine-readable results
//                  (default path: BENCH_micro_ops.json)
//   --filter=str   only run benches whose name contains `str`
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/cli.hpp"
#include "common/serialize.hpp"
#include "common/thread_pool.hpp"
#include "dist/compression.hpp"
#include "dist/frame.hpp"
#include "dist/sim_network.hpp"
#include "dist/tcp_network.hpp"
#include "gan/arch.hpp"
#include "gan/trainer.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "obs/sink.hpp"
#include "opt/adam.hpp"
#include "tensor/tensor_ops.hpp"

using namespace mdgan;

namespace {

struct BenchResult {
  std::string name;
  double ns_per_iter = 0;
  double gflops = 0;  // 0 when the bench has no defined flop count
  double alloc_bytes_per_iter = 0;
  double alloc_count_per_iter = 0;
  std::uint64_t iters = 0;
};

class Harness {
 public:
  Harness(double min_time_s, std::string filter)
      : min_time_s_(min_time_s), filter_(std::move(filter)) {}

  // Runs `fn` repeatedly until the measurement budget is filled and
  // records timing + allocation stats. `flops` is the flop count of one
  // iteration (0 if undefined).
  void run(const std::string& name, double flops,
           const std::function<void()>& fn) {
    if (!filter_.empty() && name.find(filter_) == std::string::npos) return;
    fn();  // warm-up: first-touch allocations, lazy pool construction
    std::uint64_t iters = 1;
    for (;;) {
      const AllocStats a0 = alloc_stats();
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t i = 0; i < iters; ++i) fn();
      const auto t1 = std::chrono::steady_clock::now();
      const AllocStats da = alloc_stats() - a0;
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      if (secs >= min_time_s_ || iters >= (1ull << 30)) {
        BenchResult r;
        r.name = name;
        r.iters = iters;
        r.ns_per_iter = secs * 1e9 / static_cast<double>(iters);
        r.gflops = flops > 0 && secs > 0
                       ? flops * static_cast<double>(iters) / secs / 1e9
                       : 0.0;
        r.alloc_bytes_per_iter =
            static_cast<double>(da.bytes) / static_cast<double>(iters);
        r.alloc_count_per_iter =
            static_cast<double>(da.count) / static_cast<double>(iters);
        results_.push_back(r);
        std::printf("%-34s %12.0f ns %9.2f GFLOP/s %12.0f B/iter %8.1f allocs\n",
                    r.name.c_str(), r.ns_per_iter, r.gflops,
                    r.alloc_bytes_per_iter, r.alloc_count_per_iter);
        std::fflush(stdout);
        return;
      }
      // Re-run with enough iterations to fill the budget (x2 headroom).
      const double want = iters * (min_time_s_ / (secs > 1e-9 ? secs : 1e-9));
      iters = static_cast<std::uint64_t>(want * 2) + 1;
    }
  }

  const std::vector<BenchResult>& results() const { return results_; }

  void write_json(const std::string& path, bool tiny) const {
    std::ofstream os(path);
    os << "{\n  \"bench\": \"micro_ops\",\n";
    os << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n";
    os << "  \"gemm_isa\": \"" << gemm_isa() << "\",\n";
    os << "  \"threads\": " << ThreadPool::global().size() << ",\n";
    os << "  \"results\": [\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const auto& r = results_[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"ns_per_iter\": %.1f, "
                    "\"gflops\": %.3f, \"alloc_bytes_per_iter\": %.1f, "
                    "\"alloc_count_per_iter\": %.2f, \"iters\": %llu}%s\n",
                    r.name.c_str(), r.ns_per_iter, r.gflops,
                    r.alloc_bytes_per_iter, r.alloc_count_per_iter,
                    static_cast<unsigned long long>(r.iters),
                    i + 1 < results_.size() ? "," : "");
      os << buf;
    }
    os << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  double min_time_s_;
  std::string filter_;
  std::vector<BenchResult> results_;
};

void bench_matmul_square(Harness& h) {
  for (std::size_t n : {std::size_t{64}, std::size_t{128}, std::size_t{256}}) {
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    h.run("BM_MatmulSquare/" + std::to_string(n),
          2.0 * static_cast<double>(n) * n * n, [&] {
            Tensor c = matmul(a, b);
            volatile float sink = c[0];
            (void)sink;
          });
  }
}

void bench_matmul_gan_shaped(Harness& h) {
  // The dominant matmul of the MLP discriminator: (b, 784) x (784, 512).
  for (std::size_t b : {std::size_t{10}, std::size_t{100}}) {
    Rng rng(2);
    Tensor x = Tensor::randn({b, 784}, rng);
    Tensor w = Tensor::randn({784, 512}, rng);
    h.run("BM_MatmulGanShaped/" + std::to_string(b),
          2.0 * static_cast<double>(b) * 784 * 512, [&] {
            Tensor y = matmul(x, w);
            volatile float sink = y[0];
            (void)sink;
          });
  }
}

void bench_conv2d_forward(Harness& h) {
  for (std::size_t b : {std::size_t{10}, std::size_t{50}}) {
    Rng rng(3);
    nn::Conv2D conv(3, 16, 3, 3, 2, 1);
    nn::he_normal(conv.weight(), 27, rng);
    Tensor x = Tensor::randn({b, 3, 32, 32}, rng);
    // 32x32, k3 s2 p1 -> 16x16 output; gemm is (b*256, 27) x (27, 16).
    h.run("BM_Conv2DForward/" + std::to_string(b),
          2.0 * static_cast<double>(b) * 256 * 27 * 16, [&] {
            Tensor y = conv.forward(x, true);
            volatile float sink = y[0];
            (void)sink;
          });
  }
}

void bench_im2col(Harness& h) {
  Rng rng(4);
  Tensor x = Tensor::randn({10, 3, 32, 32}, rng);
  std::size_t oh, ow;
  h.run("BM_Im2Col", 0, [&] {
    Tensor cols = im2col(x, 3, 3, 2, 1, oh, ow);
    volatile float sink = cols[0];
    (void)sink;
  });
}

void bench_mlp_generator_forward(Harness& h) {
  for (std::size_t b : {std::size_t{10}, std::size_t{100}}) {
    Rng rng(5);
    auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
    auto g = gan::build_generator(arch, rng);
    Tensor z = Tensor::randn({b, arch.latent_dim}, rng);
    h.run("BM_MlpGeneratorForward/" + std::to_string(b), 0, [&] {
      Tensor x = g.forward(z, true);
      volatile float sink = x[0];
      (void)sink;
    });
  }
}

void bench_worker_feedback(Harness& h) {
  // Algorithm 1 lines 9-10: the per-iteration feedback computation of
  // one worker (D forward + backward to the input).
  for (std::size_t b : {std::size_t{10}, std::size_t{100}}) {
    Rng rng(6);
    auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
    auto d = gan::build_discriminator(arch, rng);
    Tensor x = Tensor::randn({b, arch.image_dim()}, rng);
    std::vector<int> labels(b, 3);
    h.run("BM_WorkerFeedback/" + std::to_string(b), 0, [&] {
      Tensor f = gan::generator_feedback(d, x, &labels, false);
      volatile float sink = f[0];
      (void)sink;
    });
  }
}

void bench_disc_learning_step(Harness& h) {
  for (std::size_t b : {std::size_t{10}, std::size_t{100}}) {
    Rng rng(7);
    auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
    auto d = gan::build_discriminator(arch, rng);
    opt::Adam adam(d.params(), d.grads(), {});
    Tensor x_real = Tensor::randn({b, arch.image_dim()}, rng);
    Tensor x_fake = Tensor::randn({b, arch.image_dim()}, rng);
    std::vector<int> y(b, 1);
    h.run("BM_DiscLearningStep/" + std::to_string(b), 0, [&] {
      auto stats =
          gan::disc_learning_step(d, adam, x_real, y, x_fake, y, true);
      volatile float sink = stats.loss_real;
      (void)sink;
    });
  }
}

void bench_swap_serialization(Harness& h) {
  // One swap message: flatten + serialize + parse + assign of a full
  // MLP discriminator (|theta| = 670,219 floats).
  Rng rng(8);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  auto d = gan::build_discriminator(arch, rng);
  h.run("BM_SwapSerialization", 0, [&] {
    auto params = d.flatten_parameters();
    ByteBuffer buf;
    buf.write_floats(params.data(), params.size());
    auto back = buf.read_floats();
    d.assign_parameters(back);
    volatile std::size_t sink = buf.size();
    (void)sink;
  });
}

void bench_feedback_compression(Harness& h) {
  // W->C wire path: compress+decompress one batch of feedback floats
  // (keeps the serialization/compression codecs off the iteration
  // critical path — the ROADMAP micro-ops item).
  Rng rng(11);
  std::vector<float> values(100 * 784);
  rng.fill_normal(values.data(), values.size(), 0.f, 1.f);
  for (auto kind : {dist::CompressionKind::kQuantizeInt8,
                    dist::CompressionKind::kTopK}) {
    dist::CompressionConfig cfg;
    cfg.kind = kind;
    h.run(std::string("BM_FeedbackCompression/") + dist::to_string(kind), 0,
          [&] {
            ByteBuffer buf;
            dist::compress(values, cfg, buf);
            auto back = dist::decompress(buf);
            volatile float sink = back[0];
            (void)sink;
          });
  }
}

void bench_wire_path(Harness& h) {
  // The per-message wire path beyond the codecs: what one
  // Transport::send + receive_tagged of a feedback-sized payload costs
  // on each backend. Sizes are one batch of (b, 784) floats for b = 8
  // (the tiny-test shape) and b = 100 (the paper's).
  for (std::size_t floats :
       {std::size_t{8} * 784, std::size_t{100} * 784}) {
    std::vector<float> values(floats);
    Rng rng(12);
    rng.fill_normal(values.data(), values.size(), 0.f, 1.f);
    const std::string suffix = "/" + std::to_string(floats);

    // In-process backend: serialize + mailbox enqueue + ordered pop.
    dist::SimNetwork sim(2);
    h.run("BM_SimNetSendRecv" + suffix, 0, [&] {
      ByteBuffer buf;
      buf.write_floats(values.data(), values.size());
      sim.send(1, dist::kServerId, "fb", std::move(buf));
      auto m = sim.receive_tagged(dist::kServerId, "fb");
      volatile std::size_t sink = m->payload.size();
      (void)sink;
    });

    // TCP framing layer alone (no kernel in the loop): encode + header
    // decode + body decode of one frame.
    h.run("BM_FrameEncodeDecode" + suffix, 0, [&] {
      ByteBuffer buf;
      buf.write_floats(values.data(), values.size());
      const auto wire = dist::encode_frame(1, dist::kServerId, "fb", buf);
      const auto body_len = dist::decode_frame_header(wire.data());
      auto f = dist::decode_frame_body(wire.data() + dist::kFrameHeaderBytes,
                                       body_len);
      volatile std::size_t sink = f.payload.size();
      (void)sink;
    });

    // The real thing over 127.0.0.1: framing + socket write + reader
    // thread + ordered mailbox pop. Once with the default scatter-gather
    // send (head + payload as two sendmsg iovecs, payload never copied
    // into a wire buffer) and once with the legacy encode-then-write
    // path, so the copy's cost is the visible delta between the two.
    struct SendPath {
      const char* name;
      bool scatter_gather;
    };
    for (const SendPath path : {SendPath{"", true},
                                SendPath{"Copy", false}}) {
      dist::TcpOptions opts;
      opts.scatter_gather = path.scatter_gather;
      auto server = dist::TcpNetwork::serve(0, 1, opts);
      auto worker =
          dist::TcpNetwork::connect("127.0.0.1", server->port(), 1, 1,
                                    opts);
      server->wait_ready();
      h.run("BM_TcpLoopbackSendRecv" + std::string(path.name) + suffix, 0,
            [&] {
              ByteBuffer buf;
              buf.write_floats(values.data(), values.size());
              worker->send(1, dist::kServerId, "fb", std::move(buf));
              auto m = server->receive_tagged(dist::kServerId, "fb");
              volatile std::size_t sink = m->payload.size();
              (void)sink;
            });
    }
  }
}

void bench_broadcast_fanout(Harness& h) {
  // The server's per-round broadcast compose for W workers over k
  // generated batches (transport excluded). Legacy path: serialize each
  // recipient's two batches into its own contiguous buffer —
  // O(W * batch-bytes) of allocation and copying per round. SharedBuf
  // path: serialize each batch ONCE and share the refcounted blob
  // across every frame — O(k * batch-bytes) plus W tiny headers. The
  // B/iter column is the win the zero-copy broadcast bought.
  const std::size_t n_workers = 16, k = 2, floats = 8 * 784;
  std::vector<std::vector<float>> batches(k, std::vector<float>(floats));
  Rng rng(13);
  for (auto& b : batches) rng.fill_normal(b.data(), b.size(), 0.f, 1.f);
  std::vector<int> labels(8, 3);

  h.run("BM_BroadcastFanoutCopy/16x6272", 0, [&] {
    std::size_t total = 0;
    for (std::size_t p = 0; p < n_workers; ++p) {
      ByteBuffer out;
      for (std::size_t j : {p % k, (p + 1) % k}) {
        out.write_pod<std::uint32_t>(static_cast<std::uint32_t>(j));
        out.write_floats(batches[j].data(), batches[j].size());
        for (int y : labels) out.write_pod<std::int32_t>(y);
      }
      total += out.size();
    }
    volatile std::size_t sink = total;
    (void)sink;
  });

  h.run("BM_BroadcastFanout/16x6272", 0, [&] {
    std::vector<dist::SharedBuf::Segment> blobs;
    blobs.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      auto blob = std::make_shared<ByteBuffer>();
      blob->write_floats(batches[j].data(), batches[j].size());
      for (int y : labels) blob->write_pod<std::int32_t>(y);
      blobs.push_back(std::move(blob));
    }
    std::size_t total = 0;
    for (std::size_t p = 0; p < n_workers; ++p) {
      dist::SharedBuf out;
      for (std::size_t j : {p % k, (p + 1) % k}) {
        ByteBuffer head;
        head.write_pod<std::uint32_t>(static_cast<std::uint32_t>(j));
        out.append(std::make_shared<const ByteBuffer>(std::move(head)));
        out.append(blobs[j]);
      }
      total += out.size();
    }
    volatile std::size_t sink = total;
    (void)sink;
  });
}

void bench_derangement(Harness& h) {
  for (std::size_t n : {std::size_t{10}, std::size_t{50}}) {
    Rng rng(9);
    h.run("BM_Derangement/" + std::to_string(n), 0, [&] {
      auto p = rng.derangement(n);
      volatile std::size_t sink = p[0];
      (void)sink;
    });
  }
}

void bench_obs(Harness& h) {
  // The telemetry layer's hot-path costs. Enabled span: two clock reads
  // plus a per-thread buffer push (target < 100 ns). Disabled span: the
  // null/enabled branch only, ~0 ns and zero allocations — the
  // zero-overhead-when-off contract the obs tests pin. Counter inc: one
  // relaxed atomic RMW through a cached pointer.
  obs::SinkConfig sc;
  sc.force_trace = true;
  obs::Sink enabled_sink(sc);
  // The per-thread buffer cap bounds memory: once the bench saturates
  // it, a span degrades to the (cheaper) overflow-drop path, so the
  // figure blends push and drop — both are live-tracer costs.
  h.run("BM_SpanStartStop", 0, [&] {
    obs::Span s(&enabled_sink.tracer(), "bench", obs::Cat::kPhase, 0);
    volatile bool sink = s.active();
    (void)sink;
  });

  obs::Sink disabled_sink;  // no trace path, no force_trace => disabled
  h.run("BM_SpanStartStopDisabled", 0, [&] {
    obs::Span s(&disabled_sink.tracer(), "bench", obs::Cat::kPhase, 0);
    volatile bool sink = s.active();
    (void)sink;
  });

  obs::Counter& c = enabled_sink.registry().counter("bench_total");
  h.run("BM_RegistryCounterInc", 0, [&] {
    c.inc(3);
    volatile std::uint64_t sink = c.value();
    (void)sink;
  });

  // Flight recorder: enabled record = one fetch_add + a slot write
  // (the ring wraps freely — overwrite IS the steady state); disabled
  // record = one relaxed load, same contract as the disabled span.
  obs::FlightRecorder flight(1024);
  flight.set_enabled(true);
  h.run("BM_FlightRecord", 0, [&] {
    flight.record(obs::FlightKind::kSuspect, 1, 2, 3, 0.5);
    volatile std::uint64_t sink = flight.recorded();
    (void)sink;
  });

  obs::FlightRecorder flight_off(1024);
  h.run("BM_FlightRecordDisabled", 0, [&] {
    flight_off.record(obs::FlightKind::kSuspect, 1, 2, 3, 0.5);
    volatile std::uint64_t sink = flight_off.recorded();
    (void)sink;
  });
}

void bench_adam_step(Harness& h) {
  Rng rng(10);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  auto g = gan::build_generator(arch, rng);
  opt::Adam adam(g.params(), g.grads(), {});
  for (auto* grad : g.grads()) {
    rng.fill_normal(grad->data(), grad->numel(), 0.f, 0.01f);
  }
  h.run("BM_AdamStepMlpGenerator", 0, [&] { adam.step(); });
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool tiny = flags.get_bool("tiny");
  const double min_time = tiny ? 0.02 : 0.25;
  std::printf("micro_ops: gemm_isa=%s threads=%zu%s\n", gemm_isa(),
              ThreadPool::global().size(), tiny ? " (tiny)" : "");
  Harness h(min_time, flags.get("filter", ""));

  bench_matmul_square(h);
  bench_matmul_gan_shaped(h);
  bench_conv2d_forward(h);
  bench_im2col(h);
  bench_mlp_generator_forward(h);
  bench_worker_feedback(h);
  bench_disc_learning_step(h);
  bench_swap_serialization(h);
  bench_feedback_compression(h);
  bench_wire_path(h);
  bench_broadcast_fanout(h);
  bench_derangement(h);
  bench_obs(h);
  bench_adam_step(h);

  if (flags.has("json")) {
    std::string path = flags.get("json", "");
    if (path.empty() || path == "true") path = "BENCH_micro_ops.json";
    h.write_json(path, tiny);
  }
  return 0;
}
