// Micro benchmarks (google-benchmark) of the kernels the experiments
// stand on: matmul, im2col-based conv, the MLP generator/discriminator
// forward+backward, the feedback computation a worker performs per
// iteration, the serialization of a swap message, and the derangement
// draw of the swap protocol. These quantify where a global iteration's
// time goes.
#include <benchmark/benchmark.h>

#include "common/serialize.hpp"
#include "gan/arch.hpp"
#include "gan/trainer.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "tensor/tensor_ops.hpp"

using namespace mdgan;

namespace {

void BM_MatmulSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulGanShaped(benchmark::State& state) {
  // The dominant matmul of the MLP discriminator: (b, 784) x (784, 512).
  const auto b = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Tensor x = Tensor::randn({b, 784}, rng);
  Tensor w = Tensor::randn({784, 512}, rng);
  for (auto _ : state) {
    Tensor y = matmul(x, w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MatmulGanShaped)->Arg(10)->Arg(100);

void BM_Conv2DForward(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::Conv2D conv(3, 16, 3, 3, 2, 1);
  nn::he_normal(conv.weight(), 27, rng);
  Tensor x = Tensor::randn({b, 3, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2DForward)->Arg(10)->Arg(50);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::randn({10, 3, 32, 32}, rng);
  std::size_t oh, ow;
  for (auto _ : state) {
    Tensor cols = im2col(x, 3, 3, 2, 1, oh, ow);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_MlpGeneratorForward(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  auto g = gan::build_generator(arch, rng);
  Tensor z = Tensor::randn({b, arch.latent_dim}, rng);
  for (auto _ : state) {
    Tensor x = g.forward(z, true);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_MlpGeneratorForward)->Arg(10)->Arg(100);

void BM_WorkerFeedback(benchmark::State& state) {
  // Algorithm 1 lines 9-10: the per-iteration feedback computation of
  // one worker (D forward + backward to the input).
  const auto b = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  auto d = gan::build_discriminator(arch, rng);
  Tensor x = Tensor::randn({b, arch.image_dim()}, rng);
  std::vector<int> labels(b, 3);
  for (auto _ : state) {
    Tensor f = gan::generator_feedback(d, x, &labels, false);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_WorkerFeedback)->Arg(10)->Arg(100);

void BM_DiscLearningStep(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  auto d = gan::build_discriminator(arch, rng);
  opt::Adam adam(d.params(), d.grads(), {});
  Tensor x_real = Tensor::randn({b, arch.image_dim()}, rng);
  Tensor x_fake = Tensor::randn({b, arch.image_dim()}, rng);
  std::vector<int> y(b, 1);
  for (auto _ : state) {
    auto stats = gan::disc_learning_step(d, adam, x_real, y, x_fake, y,
                                         true);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_DiscLearningStep)->Arg(10)->Arg(100);

void BM_SwapSerialization(benchmark::State& state) {
  // One swap message: flatten + serialize + parse + assign of a full
  // MLP discriminator (|theta| = 670,219 floats).
  Rng rng(8);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  auto d = gan::build_discriminator(arch, rng);
  for (auto _ : state) {
    auto params = d.flatten_parameters();
    ByteBuffer buf;
    buf.write_floats(params.data(), params.size());
    auto back = buf.read_floats();
    d.assign_parameters(back);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetBytesProcessed(state.iterations() * 670219 * 4);
}
BENCHMARK(BM_SwapSerialization);

void BM_Derangement(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    auto p = rng.derangement(n);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Derangement)->Arg(10)->Arg(50);

void BM_AdamStepMlpGenerator(benchmark::State& state) {
  Rng rng(10);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  auto g = gan::build_generator(arch, rng);
  opt::Adam adam(g.params(), g.grads(), {});
  for (auto* grad : g.grads()) {
    rng.fill_normal(grad->data(), grad->numel(), 0.f, 0.01f);
  }
  for (auto _ : state) {
    adam.step();
  }
  state.SetItemsProcessed(state.iterations() * 716560);
}
BENCHMARK(BM_AdamStepMlpGenerator);

}  // namespace

BENCHMARK_MAIN();
