// Figure 4 reproduction: final MNIST-score and FID of MD-GAN (MLP) as a
// function of the number of workers N, in four variants:
//   * constant workload per worker (b fixed) vs constant workload on the
//     server (b scaled as b0*N0/N, the paper's orange curves), and
//   * swapping enabled vs disabled (E=1 vs E=infinity, the paper's
//     dotted curves).
// The dataset is split over workers, so |B_n| = |B|/N shrinks with N —
// the effect the paper attributes the at-scale differences to.
//
// Paper: N in {1,10,25,50}, 20,000 iterations. Single-core default:
// N in {1,5,10}, --iters=160; --full restores the paper's N sweep.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace mdgan;
using namespace mdgan::bench;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const std::int64_t iters = flags.get_int("iters", full ? 1500 : 80);
  const std::uint64_t seed = flags.get_int("seed", 42);
  const std::size_t base_b = flags.get_int("batch", 10);
  std::vector<std::size_t> worker_counts =
      full ? std::vector<std::size_t>{1, 10, 25, 50}
           : std::vector<std::size_t>{1, 5, 10};

  std::printf("=== Figure 4: final scores vs number of workers (MLP, "
              "I=%lld) ===\n",
              static_cast<long long>(iters));
  std::printf("csv: fig4,<variant>,<N>,<b>,<IS>,<FID>\n");

  // Total dataset size is fixed; shards shrink as N grows (paper setup).
  const std::size_t total = full ? 20000 : 3000;
  auto train = data::make_synthetic_digits(total, seed);
  auto test = data::make_synthetic_digits(512, seed + 1);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256, seed);

  struct Variant {
    const char* name;
    bool constant_worker_load;  // else constant server load (scale b)
    bool swap;
  };
  const Variant variants[] = {
      {"const-worker+swap", true, true},
      {"const-worker-noswap", true, false},
      {"const-server+swap", false, true},
      {"const-server-noswap", false, false},
  };

  const std::size_t n0 = worker_counts.front() == 1 && worker_counts.size() > 1
                             ? worker_counts[1]
                             : worker_counts.front();
  for (const auto& v : variants) {
    for (std::size_t n : worker_counts) {
      // Constant server load: server handles N*b images per iteration;
      // keep N*b = n0*base_b constant (the paper scales b down with N).
      std::size_t b = v.constant_worker_load
                          ? base_b
                          : std::max<std::size_t>(1, base_b * n0 / n);
      RunContext ctx{train, evaluator, arch, iters,
                     /*eval_every=*/iters, seed};
      gan::GanHyperParams hp;
      hp.batch = b;
      MdGanRunOptions opts;
      opts.k = core::k_log_n(n);
      opts.swap_enabled = v.swap;
      auto s = run_md_gan(ctx, hp, n, opts, v.name);
      const auto& last = s.points.back();
      std::printf("fig4,%s,%zu,%zu,%.4f,%.4f\n", v.name, n, b,
                  last.scores.inception_score, last.scores.fid);
      std::fflush(stdout);
    }
  }

  std::printf(
      "\npaper shape to check: constant-worker-load beats constant-server"
      "-load at larger N; swapping beats no-swap (clearest in MS).\n");
  return 0;
}
