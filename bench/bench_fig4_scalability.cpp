// Figure 4 reproduction: final MNIST-score and FID of MD-GAN (MLP) as a
// function of the number of workers N, in four variants:
//   * constant workload per worker (b fixed) vs constant workload on the
//     server (b scaled as b0*N0/N, the paper's orange curves), and
//   * swapping enabled vs disabled (E=1 vs E=infinity, the paper's
//     dotted curves).
// The dataset is split over workers, so |B_n| = |B|/N shrinks with N —
// the effect the paper attributes the at-scale differences to.
//
// Paper: N in {1,10,25,50}, 20,000 iterations. Single-core default:
// N in {1,5,10}, --iters=160; --full restores the paper's N sweep.
//
// A second sweep reports simulated time-to-score under a link model
// (--latency-ms / --bandwidth-mbps, defaults 5ms / 100Mbit/s) while one
// worker's bandwidth is cut 1x/2x/10x: the training trajectory is
// identical across slowdowns (the link model never changes what is
// computed), but the simulated seconds needed to reach that score
// degrade monotonically with the straggler's cut. --no-time skips
// this sweep.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace mdgan;
using namespace mdgan::bench;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const std::int64_t iters = flags.get_int("iters", full ? 1500 : 80);
  const std::uint64_t seed = flags.get_int("seed", 42);
  const std::size_t base_b = flags.get_int("batch", 10);
  std::vector<std::size_t> worker_counts =
      full ? std::vector<std::size_t>{1, 10, 25, 50}
           : std::vector<std::size_t>{1, 5, 10};

  std::printf("=== Figure 4: final scores vs number of workers (MLP, "
              "I=%lld) ===\n",
              static_cast<long long>(iters));
  std::printf("csv: fig4,<variant>,<N>,<b>,<IS>,<FID>\n");

  // Total dataset size is fixed; shards shrink as N grows (paper setup).
  const std::size_t total = full ? 20000 : 3000;
  auto train = data::make_synthetic_digits(total, seed);
  auto test = data::make_synthetic_digits(512, seed + 1);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256, seed);

  struct Variant {
    const char* name;
    bool constant_worker_load;  // else constant server load (scale b)
    bool swap;
  };
  const Variant variants[] = {
      {"const-worker+swap", true, true},
      {"const-worker-noswap", true, false},
      {"const-server+swap", false, true},
      {"const-server-noswap", false, false},
  };

  const std::size_t n0 = worker_counts.front() == 1 && worker_counts.size() > 1
                             ? worker_counts[1]
                             : worker_counts.front();
  for (const auto& v : variants) {
    for (std::size_t n : worker_counts) {
      // Constant server load: server handles N*b images per iteration;
      // keep N*b = n0*base_b constant (the paper scales b down with N).
      std::size_t b = v.constant_worker_load
                          ? base_b
                          : std::max<std::size_t>(1, base_b * n0 / n);
      RunContext ctx{train, evaluator, arch, iters,
                     /*eval_every=*/iters, seed};
      gan::GanHyperParams hp;
      hp.batch = b;
      MdGanRunOptions opts;
      opts.k = core::k_log_n(n);
      opts.swap_enabled = v.swap;
      auto s = run_md_gan(ctx, hp, n, opts, v.name);
      const auto& last = s.points.back();
      std::printf("fig4,%s,%zu,%zu,%.4f,%.4f\n", v.name, n, b,
                  last.scores.inception_score, last.scores.fid);
      std::fflush(stdout);
    }
  }

  std::printf(
      "\npaper shape to check: constant-worker-load beats constant-server"
      "-load at larger N; swapping beats no-swap (clearest in MS).\n");

  if (!flags.get_bool("no-time")) {
    // Time-to-score under a straggler: same seed everywhere, so every
    // row trains the identical trajectory (the link model never changes
    // the math; printed scores can wiggle slightly because the shared
    // evaluator's sampling RNG advances between runs) — what moves is
    // the simulated time to get there, and it must grow with the
    // slowdown.
    const double latency_ms = flags.get_double("latency-ms", 5.0);
    const double mbps = flags.get_double("bandwidth-mbps", 100.0);
    const std::size_t n_t = worker_counts.back();
    std::printf("\n=== simulated time-to-score: worker 1's bandwidth cut "
                "(N=%zu, %.3gms, %.3gMbit/s) ===\n",
                n_t, latency_ms, mbps);
    std::printf("csv: fig4time,<mode>,<slowdown>,<N>,<sim_seconds>,<IS>,"
                "<FID>\n");
    double prev = -1.0;
    bool monotone = true;
    // Sync pays the straggler on every round barrier; the §VII-1 async
    // server applies feedbacks as they arrive, so its time-to-score
    // curve is the paper's claim that async hides stragglers.
    for (const bool async : {false, true}) {
      prev = -1.0;
      for (double slowdown : {1.0, 2.0, 10.0}) {
        RunContext ctx{train, evaluator, arch, iters,
                       /*eval_every=*/iters, seed};
        ctx.link = straggler_link_model(latency_ms, mbps,
                                        /*straggler_worker=*/1, slowdown,
                                        seed);
        gan::GanHyperParams hp;
        hp.batch = base_b;
        MdGanRunOptions opts;
        opts.k = core::k_log_n(n_t);
        opts.async = async;
        auto s = run_md_gan(ctx, hp, n_t, opts,
                            async ? "straggler-async" : "straggler");
        const auto& last = s.points.back();
        std::printf("fig4time,%s,%.0f,%zu,%.4f,%.4f,%.4f\n",
                    async ? "async" : "sync", slowdown, n_t, s.sim_total,
                    last.scores.inception_score, last.scores.fid);
        std::fflush(stdout);
        monotone = monotone && s.sim_total > prev;
        prev = s.sim_total;
      }
    }
    std::printf("time-to-score degradation monotone in slowdown: %s\n",
                monotone ? "yes" : "NO (unexpected)");
  }
  return 0;
}
