// Shared plumbing for the experiment benches: competitor runners that
// train one configuration and return its evaluation series plus the
// traffic its simulated network carried. Every bench emits CSV rows:
//   series,<label>,<iter>,<inception_score>,<fid>
//
// Every bench accepts --iters / --workers / --batch / --seed / --full;
// defaults are scaled for a single CPU core (the paper used 4 GPUs and
// I=50,000 — see EXPERIMENTS.md for the mapping).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/complexity.hpp"
#include "core/md_gan.hpp"
#include "data/synthetic.hpp"
#include "gan/fl_gan.hpp"
#include "metrics/evaluator.hpp"

namespace mdgan::bench {

struct TrafficSummary {
  std::uint64_t c_to_w = 0;
  std::uint64_t w_to_c = 0;
  std::uint64_t w_to_w = 0;
  std::uint64_t max_worker_ingress_per_iter = 0;
  std::uint64_t max_server_ingress_per_iter = 0;

  static TrafficSummary of(const dist::Network& net) {
    TrafficSummary t;
    t.c_to_w = net.totals(dist::LinkKind::kServerToWorker).bytes;
    t.w_to_c = net.totals(dist::LinkKind::kWorkerToServer).bytes;
    t.w_to_w = net.totals(dist::LinkKind::kWorkerToWorker).bytes;
    for (std::size_t w = 1; w <= net.n_workers(); ++w) {
      t.max_worker_ingress_per_iter =
          std::max(t.max_worker_ingress_per_iter,
                   net.max_ingress_per_iteration(static_cast<int>(w)));
    }
    t.max_server_ingress_per_iter =
        net.max_ingress_per_iteration(dist::kServerId);
    return t;
  }
};

struct Series {
  std::string label;
  std::vector<metrics::EvalRecord> points;
  TrafficSummary traffic;
};

inline void print_series(const Series& s) {
  for (const auto& r : s.points) {
    std::printf("series,%s,%lld,%.4f,%.4f\n", s.label.c_str(),
                static_cast<long long>(r.iter), r.scores.inception_score,
                r.scores.fid);
  }
}

inline void print_final_table(const std::vector<Series>& all) {
  std::printf("\n%-28s %10s %10s %12s %12s\n", "competitor", "final IS",
              "final FID", "C<->W", "W<->W");
  for (const auto& s : all) {
    if (s.points.empty()) continue;
    const auto& last = s.points.back();
    std::printf("%-28s %10.3f %10.2f %12s %12s\n", s.label.c_str(),
                last.scores.inception_score, last.scores.fid,
                core::human_bytes(s.traffic.c_to_w + s.traffic.w_to_c)
                    .c_str(),
                core::human_bytes(s.traffic.w_to_w).c_str());
  }
}

// --- competitor runners -------------------------------------------------

struct RunContext {
  const data::InMemoryDataset& train;
  metrics::Evaluator& evaluator;
  gan::GanArch arch;
  std::int64_t iters;
  std::int64_t eval_every;
  std::uint64_t seed;
};

inline Series run_standalone(const RunContext& ctx, gan::GanHyperParams hp,
                             const std::string& label) {
  Series out{label, {}, {}};
  gan::StandaloneGan alone(ctx.arch, hp, ctx.seed);
  out.points.push_back(
      {0, ctx.evaluator.evaluate(alone.generator(), ctx.arch,
                                 alone.codes())});
  alone.train(ctx.train, ctx.iters, ctx.eval_every,
              [&](std::int64_t it, nn::Sequential& g) {
                out.points.push_back(
                    {it, ctx.evaluator.evaluate(g, ctx.arch,
                                                alone.codes())});
              });
  return out;
}

inline Series run_fl_gan(const RunContext& ctx, gan::GanHyperParams hp,
                         std::size_t workers,
                         const std::string& label) {
  Series out{label, {}, {}};
  Rng split_rng(ctx.seed);
  auto shards = data::split_iid(ctx.train, workers, split_rng);
  dist::Network net(workers);
  gan::FlGanConfig cfg;
  cfg.hp = hp;
  gan::FlGan fl(ctx.arch, cfg, std::move(shards), ctx.seed, net);
  {
    auto g = fl.server_generator();
    out.points.push_back(
        {0, ctx.evaluator.evaluate(g, ctx.arch, fl.codes())});
  }
  fl.train(ctx.iters, ctx.eval_every,
           [&](std::int64_t it, nn::Sequential& g) {
             out.points.push_back(
                 {it, ctx.evaluator.evaluate(g, ctx.arch, fl.codes())});
           });
  out.traffic = TrafficSummary::of(net);
  return out;
}

struct MdGanRunOptions {
  std::size_t k = 1;
  bool swap_enabled = true;
  const dist::CrashSchedule* crashes = nullptr;
};

inline Series run_md_gan(const RunContext& ctx, gan::GanHyperParams hp,
                         std::size_t workers, MdGanRunOptions opts,
                         const std::string& label) {
  Series out{label, {}, {}};
  Rng split_rng(ctx.seed);
  auto shards = data::split_iid(ctx.train, workers, split_rng);
  dist::Network net(workers);
  core::MdGanConfig cfg;
  cfg.hp = hp;
  cfg.k = opts.k;
  cfg.swap_enabled = opts.swap_enabled;
  core::MdGan md(ctx.arch, cfg, std::move(shards), ctx.seed, net,
                 opts.crashes);
  out.points.push_back(
      {0, ctx.evaluator.evaluate(md.generator(), ctx.arch, md.codes())});
  md.train(ctx.iters, ctx.eval_every,
           [&](std::int64_t it, nn::Sequential& g) {
             out.points.push_back(
                 {it, ctx.evaluator.evaluate(g, ctx.arch, md.codes())});
           });
  out.traffic = TrafficSummary::of(net);
  return out;
}

}  // namespace mdgan::bench
