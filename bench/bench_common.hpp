// Shared plumbing for the experiment benches: competitor runners that
// train one configuration and return its evaluation series plus the
// traffic its simulated network carried. Every bench emits CSV rows:
//   series,<label>,<iter>,<inception_score>,<fid>,<sim_seconds>
// where <sim_seconds> is the simulated elapsed time under the run's
// link model (0 under the default zero model), turning every score
// series into a time-to-score series.
//
// Every bench accepts --iters / --workers / --batch / --seed / --full;
// defaults are scaled for a single CPU core (the paper used 4 GPUs and
// I=50,000 — see EXPERIMENTS.md for the mapping). Benches that model
// time also accept --latency-ms / --bandwidth-mbps / --jitter-ms via
// link_model_from_flags.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/complexity.hpp"
#include "core/md_gan.hpp"
#include "data/synthetic.hpp"
#include "dist/sim_network.hpp"
#include "gan/fl_gan.hpp"
#include "metrics/evaluator.hpp"
#include "obs/sink.hpp"

namespace mdgan::bench {

struct TrafficSummary {
  std::uint64_t c_to_w = 0;
  std::uint64_t w_to_c = 0;
  std::uint64_t w_to_w = 0;
  std::uint64_t max_worker_ingress_per_iter = 0;
  std::uint64_t max_server_ingress_per_iter = 0;

  static TrafficSummary of(const dist::Transport& net) {
    TrafficSummary t;
    t.c_to_w = net.totals(dist::LinkKind::kServerToWorker).bytes;
    t.w_to_c = net.totals(dist::LinkKind::kWorkerToServer).bytes;
    t.w_to_w = net.totals(dist::LinkKind::kWorkerToWorker).bytes;
    for (std::size_t w = 1; w <= net.n_workers(); ++w) {
      t.max_worker_ingress_per_iter =
          std::max(t.max_worker_ingress_per_iter,
                   net.max_ingress_per_iteration(static_cast<int>(w)));
    }
    t.max_server_ingress_per_iter =
        net.max_ingress_per_iteration(dist::kServerId);
    return t;
  }

  // Same summary, but the per-link byte totals come out of a telemetry
  // registry (the bytes_total{link} counters the transport charges on
  // the same guarded path as its accountant) — the two agree exactly,
  // pinned by tests/obs. Ingress peaks still come from the transport,
  // which is their only source.
  static TrafficSummary of(const dist::Transport& net,
                           const obs::Registry& reg) {
    TrafficSummary t = of(net);
    t.c_to_w = reg.counter_value("bytes_total{link=c2w}");
    t.w_to_c = reg.counter_value("bytes_total{link=w2c}");
    t.w_to_w = reg.counter_value("bytes_total{link=w2w}");
    return t;
  }
};

struct Series {
  std::string label;
  std::vector<metrics::EvalRecord> points;
  TrafficSummary traffic;
  // Simulated elapsed seconds at each eval point (aligned with
  // `points`; all zeros under the zero link model / no network).
  std::vector<double> sim_at;
  // Simulated elapsed seconds at the end of the run.
  double sim_total = 0.0;
};

inline void print_series(const Series& s) {
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    const auto& r = s.points[i];
    const double t = i < s.sim_at.size() ? s.sim_at[i] : 0.0;
    std::printf("series,%s,%lld,%.4f,%.4f,%.4f\n", s.label.c_str(),
                static_cast<long long>(r.iter), r.scores.inception_score,
                r.scores.fid, t);
  }
}

inline void print_final_table(const std::vector<Series>& all) {
  std::printf("\n%-28s %10s %10s %12s %12s %12s\n", "competitor",
              "final IS", "final FID", "C<->W", "W<->W", "sim time");
  for (const auto& s : all) {
    if (s.points.empty()) continue;
    const auto& last = s.points.back();
    std::printf("%-28s %10.3f %10.2f %12s %12s %10.3fs\n", s.label.c_str(),
                last.scores.inception_score, last.scores.fid,
                core::human_bytes(s.traffic.c_to_w + s.traffic.w_to_c)
                    .c_str(),
                core::human_bytes(s.traffic.w_to_w).c_str(), s.sim_total);
  }
}

// --- link-model helpers -------------------------------------------------

// Uniform link model from the shared bench flags: --latency-ms,
// --bandwidth-mbps (megabits/s), --jitter-ms. All-zero flags (the
// default) give the zero model, i.e. the pre-clock behavior.
inline dist::LinkModel link_model_from_flags(const CliFlags& flags,
                                             std::uint64_t seed,
                                             double default_latency_ms = 0,
                                             double default_mbps = 0,
                                             double default_jitter_ms = 0) {
  dist::LinkParams p;
  p.latency_s =
      dist::ms_to_s(flags.get_double("latency-ms", default_latency_ms));
  p.bytes_per_s = dist::mbps_to_bytes_per_s(
      flags.get_double("bandwidth-mbps", default_mbps));
  p.jitter_s =
      dist::ms_to_s(flags.get_double("jitter-ms", default_jitter_ms));
  return dist::LinkModel(p, seed);
}

// A uniform model with one straggling worker whose links (both
// directions) run `slowdown` times slower.
inline dist::LinkModel straggler_link_model(double latency_ms, double mbps,
                                            int straggler_worker,
                                            double slowdown,
                                            std::uint64_t seed) {
  dist::LinkParams p;
  p.latency_s = dist::ms_to_s(latency_ms);
  p.bytes_per_s = dist::mbps_to_bytes_per_s(mbps);
  dist::LinkModel model(p, seed);
  if (slowdown != 1.0) model.slow_node(straggler_worker, slowdown);
  return model;
}

// --- competitor runners -------------------------------------------------

struct RunContext {
  const data::InMemoryDataset& train;
  metrics::Evaluator& evaluator;
  gan::GanArch arch;
  std::int64_t iters;
  std::int64_t eval_every;
  std::uint64_t seed;
  // Link model applied to the run's Network (zero model by default, so
  // benches that don't care about time are unchanged).
  dist::LinkModel link{};
};

inline Series run_standalone(const RunContext& ctx, gan::GanHyperParams hp,
                             const std::string& label) {
  Series out{label, {}, {}, {}, 0.0};
  gan::StandaloneGan alone(ctx.arch, hp, ctx.seed);
  out.points.push_back(
      {0, ctx.evaluator.evaluate(alone.generator(), ctx.arch,
                                 alone.codes())});
  out.sim_at.push_back(0.0);  // no network, no simulated time
  alone.train(ctx.train, ctx.iters, ctx.eval_every,
              [&](std::int64_t it, nn::Sequential& g) {
                out.points.push_back(
                    {it, ctx.evaluator.evaluate(g, ctx.arch,
                                                alone.codes())});
                out.sim_at.push_back(0.0);
              });
  return out;
}

inline Series run_fl_gan(const RunContext& ctx, gan::GanHyperParams hp,
                         std::size_t workers,
                         const std::string& label) {
  Series out{label, {}, {}, {}, 0.0};
  Rng split_rng(ctx.seed);
  auto shards = data::split_iid(ctx.train, workers, split_rng);
  dist::Network net(workers);
  net.set_link_model(ctx.link);
  gan::FlGanConfig cfg;
  cfg.hp = hp;
  gan::FlGan fl(ctx.arch, cfg, std::move(shards), ctx.seed, net);
  {
    auto g = fl.server_generator();
    out.points.push_back(
        {0, ctx.evaluator.evaluate(g, ctx.arch, fl.codes())});
    out.sim_at.push_back(net.max_sim_time());
  }
  fl.train(ctx.iters, ctx.eval_every,
           [&](std::int64_t it, nn::Sequential& g) {
             out.points.push_back(
                 {it, ctx.evaluator.evaluate(g, ctx.arch, fl.codes())});
             out.sim_at.push_back(net.max_sim_time());
           });
  out.traffic = TrafficSummary::of(net);
  out.sim_total = net.max_sim_time();
  return out;
}

struct MdGanRunOptions {
  std::size_t k = 1;
  bool swap_enabled = true;
  // Membership schedule: leave/rejoin intervals, or a plain
  // CrashSchedule for fail-stop-only runs (Figure 5).
  const dist::AvailabilitySchedule* availability = nullptr;
  dist::CompressionConfig feedback_compression{};
  // §VII-1 async server: one Adam step per feedback, on arrival.
  bool async = false;
};

inline Series run_md_gan(const RunContext& ctx, gan::GanHyperParams hp,
                         std::size_t workers, MdGanRunOptions opts,
                         const std::string& label) {
  Series out{label, {}, {}, {}, 0.0};
  Rng split_rng(ctx.seed);
  auto shards = data::split_iid(ctx.train, workers, split_rng);
  // Metrics-only sink (no trace/metrics paths => tracing off, registry
  // counting on): the bench's traffic columns are read back out of the
  // registry, exercising the same counters ci.sh validates. Declared
  // before the network so it outlives the transport that charges it.
  obs::Sink sink;
  dist::Network net(workers);
  net.set_link_model(ctx.link);
  core::MdGanConfig cfg;
  cfg.hp = hp;
  cfg.k = opts.k;
  cfg.swap_enabled = opts.swap_enabled;
  cfg.feedback_compression = opts.feedback_compression;
  cfg.async = opts.async;
  cfg.sink = &sink;
  core::MdGan md(ctx.arch, cfg, std::move(shards), ctx.seed, net,
                 opts.availability);
  out.points.push_back(
      {0, ctx.evaluator.evaluate(md.generator(), ctx.arch, md.codes())});
  out.sim_at.push_back(md.sim_seconds());
  md.train(ctx.iters, ctx.eval_every,
           [&](std::int64_t it, nn::Sequential& g) {
             out.points.push_back(
                 {it, ctx.evaluator.evaluate(g, ctx.arch, md.codes())});
             out.sim_at.push_back(md.sim_seconds());
           });
  out.traffic = TrafficSummary::of(net, sink.registry());
  out.sim_total = md.sim_seconds();
  return out;
}

}  // namespace mdgan::bench
