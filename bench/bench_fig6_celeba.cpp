// Figure 6 reproduction: the larger-dataset validation (CelebA in the
// paper, our synthetic faces substitute). Three competitors with the
// paper's §V-B4 asymmetric setup:
//   * standalone GAN, b=200,
//   * FL-GAN, b=200, N=5 workers,
//   * MD-GAN, b=40, N=5 (so 5*40 = 200 images feed one generator
//     update, the paper's "200 images processed per update" note),
// and the paper's per-competitor Adam settings: standalone/FL-GAN use
// lr(G)=0.003 / lr(D)=0.002, beta1=0.5, beta2=0.999; MD-GAN uses
// lr(G)=0.001 / lr(D)=0.004, beta1=0.0, beta2=0.9.
//
// Single-core scaling: 32x32 faces instead of 128x128, b=40/8 by
// default; --full raises toward paper batch sizes.
#include <cstdio>

#include "bench_common.hpp"

using namespace mdgan;
using namespace mdgan::bench;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const std::size_t workers = flags.get_int("workers", 5);
  const std::int64_t iters = flags.get_int("iters", full ? 1000 : 60);
  const std::int64_t eval_every =
      flags.get_int("eval-every", std::max<std::int64_t>(iters / 4, 1));
  const std::uint64_t seed = flags.get_int("seed", 42);
  const std::size_t big_b = flags.get_int("batch", full ? 200 : 40);
  const std::size_t md_b = std::max<std::size_t>(1, big_b / workers);

  std::printf("=== Figure 6: larger dataset (synthetic faces, CelebA "
              "substitute), N in {1,%zu} ===\n", workers);
  std::printf("standalone/fl-gan b=%zu, md-gan b=%zu (N*b = %zu images "
              "per generator update)\n",
              big_b, md_b, md_b * workers);

  auto train = data::make_synthetic_faces(
      std::max<std::size_t>(workers * (full ? 2000 : 300),
                            big_b * workers),
      seed);
  auto test = data::make_synthetic_faces(512, seed + 1);
  auto arch = gan::make_arch(gan::ArchKind::kCnnCeleba);
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256, seed);
  std::printf("scoring classifier accuracy: %.3f\n",
              evaluator.classifier_accuracy());

  RunContext ctx{train, evaluator, arch, iters, eval_every, seed};

  // Paper §V-B4 optimizer settings.
  gan::GanHyperParams hp_central;
  hp_central.batch = big_b;
  hp_central.g_adam = {0.003f, 0.5f, 0.999f, 1e-8f};
  hp_central.d_adam = {0.002f, 0.5f, 0.999f, 1e-8f};

  gan::GanHyperParams hp_md;
  hp_md.batch = md_b;
  hp_md.g_adam = {0.001f, 0.0f, 0.9f, 1e-8f};
  hp_md.d_adam = {0.004f, 0.0f, 0.9f, 1e-8f};

  std::vector<Series> all;
  all.push_back(run_standalone(ctx, hp_central, "standalone b=" +
                                                    std::to_string(big_b)));
  print_series(all.back());
  all.push_back(run_fl_gan(ctx, hp_central, workers,
                           "fl-gan b=" + std::to_string(big_b)));
  print_series(all.back());
  all.push_back(run_md_gan(ctx, hp_md, workers,
                           {.k = core::k_log_n(workers)},
                           "md-gan b=" + std::to_string(md_b)));
  print_series(all.back());

  print_final_table(all);
  std::printf(
      "\npaper shape to check: IS comparable across competitors (MD-GAN "
      "slightly above); standalone leads on FID.\n");
  return 0;
}
