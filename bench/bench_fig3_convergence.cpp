// Figure 3 reproduction: MNIST-score / Inception-score (higher better)
// and FID (lower better) vs training iterations for the six competitors:
//   standalone b=10, standalone b=100,
//   FL-GAN b=10, FL-GAN b=100,
//   MD-GAN k=1, MD-GAN k=floor(log N)        (both at b=10)
// on the MNIST substitute (MLP arch by default; --arch=cnn-mnist or
// --dataset=cifar --arch=cnn-cifar for the paper's other two panels).
//
// Paper-scale is I=50,000 on 4 GPUs; the single-core default here is
// --iters=240 with N=5, which preserves the orderings the paper reports
// (MD-GAN tracks standalone b=100, k=log N >= k=1, FL-GAN trails on the
// MLP panel). Use --full for N=10 and longer runs.
//
// Time-to-score: pass --latency-ms / --bandwidth-mbps (/ --jitter-ms)
// to attach a link model; every series row then carries the simulated
// elapsed seconds at that eval point, so the same run doubles as the
// paper's score-vs-time comparison (standalone runs report 0 — they
// move no bytes).
#include <cstdio>
#include <string>

#include "bench_common.hpp"

using namespace mdgan;
using namespace mdgan::bench;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full");
  // Default N=8 so k = floor(log N) = 2 > 1 and the paper's k-diversity
  // comparison actually shows (with N=5, log N floors to 1).
  const std::size_t workers = flags.get_int("workers", full ? 10 : 8);
  const std::int64_t iters = flags.get_int("iters", full ? 2000 : 120);
  const std::int64_t eval_every =
      flags.get_int("eval-every", std::max<std::int64_t>(iters / 4, 1));
  const std::uint64_t seed = flags.get_int("seed", 42);
  const std::string dataset = flags.get("dataset", "digits");
  const std::string arch_name =
      flags.get("arch", dataset == "cifar" ? "cnn-cifar" : "mlp-mnist");
  const std::size_t small_b = flags.get_int("batch", 10);
  const std::size_t big_b = flags.get_int("big-batch", full ? 100 : 32);

  std::printf("=== Figure 3: score vs iterations (%s / %s, N=%zu, "
              "I=%lld) ===\n",
              dataset.c_str(), arch_name.c_str(), workers,
              static_cast<long long>(iters));

  auto train = data::make_dataset_by_name(
      dataset, workers * (full ? 2000 : 400), seed);
  auto test = data::make_dataset_by_name(dataset, 512, seed + 1);
  auto arch = gan::make_arch(gan::arch_from_name(arch_name));
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f},
                               flags.get_int("eval-samples", 256), seed);
  std::printf("scoring classifier accuracy: %.3f\n",
              evaluator.classifier_accuracy());

  RunContext ctx{train, evaluator, arch, iters, eval_every, seed};
  ctx.link = link_model_from_flags(flags, seed);
  if (!ctx.link.zero()) {
    std::printf("link model: latency=%.3gms bandwidth=%.3gMbit/s "
                "jitter=%.3gms (series rows carry sim seconds)\n",
                flags.get_double("latency-ms", 0),
                flags.get_double("bandwidth-mbps", 0),
                flags.get_double("jitter-ms", 0));
  }
  gan::GanHyperParams hp_small, hp_big;
  hp_small.batch = small_b;
  hp_big.batch = big_b;

  std::vector<Series> all;
  all.push_back(run_standalone(
      ctx, hp_small, "standalone b=" + std::to_string(small_b)));
  print_series(all.back());
  all.push_back(
      run_standalone(ctx, hp_big, "standalone b=" + std::to_string(big_b)));
  print_series(all.back());
  all.push_back(run_fl_gan(ctx, hp_small, workers,
                           "fl-gan b=" + std::to_string(small_b)));
  print_series(all.back());
  all.push_back(run_fl_gan(ctx, hp_big, workers,
                           "fl-gan b=" + std::to_string(big_b)));
  print_series(all.back());
  all.push_back(run_md_gan(ctx, hp_small, workers, {.k = 1},
                           "md-gan k=1 b=" + std::to_string(small_b)));
  print_series(all.back());
  const std::size_t klog = core::k_log_n(workers);
  if (klog != 1) {
    all.push_back(
        run_md_gan(ctx, hp_small, workers, {.k = klog},
                   "md-gan k=" + std::to_string(klog) + " b=" +
                       std::to_string(small_b)));
    print_series(all.back());
  }
  // §VII-1 async server: one Adam step per feedback, no round barrier.
  // Under a link model its series rows become the async time-to-score
  // curve next to the synchronous ones above.
  {
    MdGanRunOptions opts;
    opts.k = klog;
    opts.async = true;
    all.push_back(run_md_gan(ctx, hp_small, workers, opts,
                             "md-gan async k=" + std::to_string(klog) +
                                 " b=" + std::to_string(small_b)));
    print_series(all.back());
  }

  print_final_table(all);
  std::printf(
      "\npaper shape to check: MD-GAN close to standalone b=%zu; "
      "k=floor(log N) >= k=1; FL-GAN trails on the MLP panel.\n",
      big_b);
  return 0;
}
