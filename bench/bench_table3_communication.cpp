// Table III reproduction: communication complexities per link type for
// FL-GAN and MD-GAN, both symbolically (the paper's formulas) and
// instantiated for the three architectures.
#include <cstdio>

#include "common/cli.hpp"
#include "core/complexity.hpp"

using namespace mdgan;

namespace {

void print_dims(const char* name, core::GanDims dims) {
  const auto fl = core::fl_gan_comm(dims);
  const auto md = core::md_gan_comm(dims);
  std::printf("\n-- %s, b=%llu, N=%llu, m=%llu, E=%llu, I=%llu --\n", name,
              (unsigned long long)dims.batch,
              (unsigned long long)dims.n_workers,
              (unsigned long long)dims.local_m,
              (unsigned long long)dims.epochs,
              (unsigned long long)dims.iters);
  std::printf("%-18s %14s %14s\n", "link", "FL-GAN", "MD-GAN");
  auto row = [](const char* what, std::uint64_t a, std::uint64_t b) {
    std::printf("%-18s %14s %14s\n", what, core::human_bytes(a).c_str(),
                core::human_bytes(b).c_str());
  };
  row("C->W (C)", fl.c_to_w_at_server, md.c_to_w_at_server);
  row("C->W (W)", fl.c_to_w_at_worker, md.c_to_w_at_worker);
  row("W->C (W)", fl.w_to_c_at_worker, md.w_to_c_at_worker);
  row("W->C (C)", fl.w_to_c_at_server, md.w_to_c_at_server);
  row("W->W (W)", fl.w_to_w_at_worker, md.w_to_w_at_worker);
  std::printf("%-18s %14llu %14llu\n", "Total # C<->W",
              (unsigned long long)fl.num_cw_events,
              (unsigned long long)md.num_cw_events);
  std::printf("%-18s %14llu %14llu\n", "Total # W<->W",
              (unsigned long long)fl.num_ww_events,
              (unsigned long long)md.num_ww_events);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);

  std::printf("=== Table III: communication complexities ===\n");
  std::printf("symbolic (paper row -> formula, in values not bytes):\n");
  std::printf("  %-14s %-16s %-16s\n", "link", "FL-GAN", "MD-GAN");
  std::printf("  %-14s %-16s %-16s\n", "C->W (C)", "N(theta+w)", "2bdN");
  std::printf("  %-14s %-16s %-16s\n", "C->W (W)", "theta+w", "2bd");
  std::printf("  %-14s %-16s %-16s\n", "W->C (W)", "theta+w", "bd");
  std::printf("  %-14s %-16s %-16s\n", "W->C (C)", "N(theta+w)", "bdN");
  std::printf("  %-14s %-16s %-16s\n", "# C<->W", "Ib/(mE)", "I");
  std::printf("  %-14s %-16s %-16s\n", "W->W (W)", "-", "theta");
  std::printf("  %-14s %-16s %-16s\n", "# W<->W", "-", "Ib/(mE)");
  std::printf("(the paper's Table III writes the per-worker C->W volume "
              "as bd; its own text fixes the constant to two batches, "
              "2bd per worker — we keep the constants)\n");

  auto mlp = core::paper_mnist_mlp_dims();
  auto cnn = core::paper_mnist_cnn_dims();
  auto cifar = core::paper_cifar_cnn_dims();
  mlp.batch = cnn.batch = cifar.batch = flags.get_int("batch", 10);

  print_dims("MNIST MLP", mlp);
  print_dims("MNIST CNN", cnn);
  print_dims("CIFAR10 CNN", cifar);
  return 0;
}
