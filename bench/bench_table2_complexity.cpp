// Table II reproduction: computation and memory complexity of FL-GAN vs
// MD-GAN at server and workers, evaluated numerically for the paper's
// three architectures. The paper's headline row — MD-GAN halves the
// worker load — shows up as the comp-W / mem-W ratios near 0.5.
//
// Also verifies our concrete builders: the MLP parameter counts must
// equal the paper's published 716,560 / 670,219.
#include <cstdio>

#include "common/cli.hpp"
#include "core/complexity.hpp"
#include "gan/arch.hpp"

using namespace mdgan;

namespace {

void print_arch(const char* name, core::GanDims dims, std::size_t batch) {
  dims.batch = batch;
  const auto fl = core::fl_gan_compute(dims);
  const auto md = core::md_gan_compute(dims);
  std::printf("\n-- %s (|w|=%llu, |theta|=%llu, d=%llu, b=%llu, N=%llu, "
              "k=%llu, I=%llu) --\n",
              name, (unsigned long long)dims.gen_params,
              (unsigned long long)dims.disc_params,
              (unsigned long long)dims.data_dim,
              (unsigned long long)dims.batch,
              (unsigned long long)dims.n_workers,
              (unsigned long long)dims.k,
              (unsigned long long)dims.iters);
  std::printf("%-16s %14s %14s %8s\n", "quantity", "FL-GAN", "MD-GAN",
              "ratio");
  auto row = [](const char* what, double a, double b) {
    std::printf("%-16s %14.4g %14.4g %8.3f\n", what, a, b, b / a);
  };
  row("computation C", fl.comp_server, md.comp_server);
  row("memory C", fl.mem_server, md.mem_server);
  row("computation W", fl.comp_worker, md.comp_worker);
  row("memory W", fl.mem_worker, md.mem_worker);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::size_t batch = flags.get_int("batch", 10);

  std::printf("=== Table II: computation complexity and memory, "
              "FL-GAN vs MD-GAN ===\n");
  std::printf("(values are the paper's O(.) expressions evaluated "
              "numerically; the grey rows of the paper are 'computation "
              "W' and 'memory W' — MD-GAN's ratio ~0.5 is the headline "
              "claim)\n");

  print_arch("MNIST MLP", core::paper_mnist_mlp_dims(), batch);
  print_arch("MNIST CNN", core::paper_mnist_cnn_dims(), batch);
  print_arch("CIFAR10 CNN", core::paper_cifar_cnn_dims(), batch);

  // Cross-check the concrete builders against the paper's counts.
  std::printf("\n-- parameter counts of this repo's builders --\n");
  Rng rng(1);
  std::printf("%-12s %12s %12s\n", "arch", "|w| (G)", "|theta| (D)");
  for (auto kind :
       {gan::ArchKind::kMlpMnist, gan::ArchKind::kCnnMnist,
        gan::ArchKind::kCnnCifar, gan::ArchKind::kCnnCeleba}) {
    auto arch = gan::make_arch(kind);
    auto g = gan::build_generator(arch, rng);
    auto d = gan::build_discriminator(arch, rng);
    std::printf("%-12s %12zu %12zu\n", gan::arch_name(kind),
                g.num_parameters(), d.num_parameters());
  }
  std::printf("(mlp-mnist counts match the paper exactly: 716560 / "
              "670219; CNN channel widths are CPU-scaled, see "
              "DESIGN.md)\n");
  return 0;
}
