// Figure 5 reproduction: MD-GAN under fail-stop worker crashes. One
// worker (and its data shard) dies every I/N iterations, so the last
// crash coincides with the end of the run. Compared against the
// no-crash MD-GAN run with identical seed/config and the standalone
// baselines at b in {10, 100} — exactly the paper's panel layout.
//
//   --dataset=digits (default) or cifar; --full for paper-leaning scale.
#include <cstdio>
#include <string>

#include "bench_common.hpp"

using namespace mdgan;
using namespace mdgan::bench;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const std::size_t workers = flags.get_int("workers", full ? 10 : 5);
  const std::int64_t iters = flags.get_int("iters", full ? 2000 : 200);
  const std::int64_t eval_every =
      flags.get_int("eval-every", std::max<std::int64_t>(iters / 5, 1));
  const std::uint64_t seed = flags.get_int("seed", 42);
  const std::string dataset = flags.get("dataset", "digits");
  const std::string arch_name =
      flags.get("arch", dataset == "cifar" ? "cnn-cifar" : "mlp-mnist");
  const std::size_t b = flags.get_int("batch", 10);

  std::printf("=== Figure 5: fault tolerance under worker crashes (%s / "
              "%s, N=%zu, I=%lld, one crash every %lld iters) ===\n",
              dataset.c_str(), arch_name.c_str(), workers,
              static_cast<long long>(iters),
              static_cast<long long>(iters / workers));

  auto train = data::make_dataset_by_name(
      dataset, workers * (full ? 2000 : 400), seed);
  auto test = data::make_dataset_by_name(dataset, 512, seed + 1);
  auto arch = gan::make_arch(gan::arch_from_name(arch_name));
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256, seed);

  RunContext ctx{train, evaluator, arch, iters, eval_every, seed};
  gan::GanHyperParams hp10, hp100;
  hp10.batch = b;
  hp100.batch = full ? 100 : 40;
  const std::size_t k = core::k_log_n(workers);

  std::vector<Series> all;
  // Best-performing MD-GAN setup (k = floor(log N)), crash-free.
  all.push_back(run_md_gan(ctx, hp10, workers, {.k = k},
                           "md-gan no-crash"));
  print_series(all.back());

  // Same setup with the paper's crash schedule.
  auto crashes = dist::CrashSchedule::evenly_spaced(iters, workers);
  all.push_back(run_md_gan(ctx, hp10, workers,
                           {.k = k, .availability = &crashes},
                           "md-gan crashes"));
  print_series(all.back());

  // Standalone baselines for context.
  all.push_back(run_standalone(
      ctx, hp10, "standalone b=" + std::to_string(hp10.batch)));
  print_series(all.back());
  all.push_back(run_standalone(
      ctx, hp100, "standalone b=" + std::to_string(hp100.batch)));
  print_series(all.back());

  print_final_table(all);
  std::printf(
      "\npaper shape to check: crashes barely hurt on the MNIST-like "
      "panel; on CIFAR-like data divergence appears after early "
      "crashes, scores comparable to standalone until most workers are "
      "gone.\n");
  return 0;
}
