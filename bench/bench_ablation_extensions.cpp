// Ablation for the §VII "perspectives" implemented beyond the paper's
// evaluated configuration:
//  * async server updates (§VII-1): one Adam step per feedback vs the
//    synchronous barrier — compared at equal *generator update* budget,
//    since async turns each global iteration into N updates;
//  * feedback compression (§VII-2): none / int8 / top-k(10%) — score vs
//    measured W->C traffic;
//  * sparse discriminators (§VII-4): n_discs in {N, N/2, 1} — score vs
//    per-iteration worker compute.
#include <cstdio>

#include "bench_common.hpp"
#include "dist/sim_network.hpp"

using namespace mdgan;
using namespace mdgan::bench;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.get_bool("full");
  const std::size_t workers = flags.get_int("workers", 4);
  const std::int64_t iters = flags.get_int("iters", full ? 600 : 120);
  const std::uint64_t seed = flags.get_int("seed", 42);

  std::printf("=== Ablation: §VII extensions (async, compression, sparse "
              "discriminators; MLP, N=%zu, I=%lld) ===\n",
              workers, static_cast<long long>(iters));
  std::printf("csv: ext,<variant>,<IS>,<FID>,<w2c_bytes>,<gen_updates>\n");

  auto train = data::make_synthetic_digits(workers * 400, seed);
  auto test = data::make_synthetic_digits(512, seed + 1);
  auto arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256, seed);

  auto run = [&](const char* name, core::MdGanConfig cfg,
                 std::int64_t run_iters) {
    Rng split_rng(seed);
    auto shards = data::split_iid(train, workers, split_rng);
    dist::Network net(workers);
    core::MdGan md(arch, cfg, std::move(shards), seed, net);
    md.train(run_iters);
    auto s = evaluator.evaluate(md.generator(), arch, md.codes());
    std::printf("ext,%s,%.4f,%.4f,%llu,%lld\n", name, s.inception_score,
                s.fid,
                (unsigned long long)net
                    .totals(dist::LinkKind::kWorkerToServer)
                    .bytes,
                static_cast<long long>(md.generator_updates()));
    std::fflush(stdout);
  };

  core::MdGanConfig base;
  base.hp.batch = 10;
  base.k = core::k_log_n(workers);

  // Sync vs async at equal generator-update budget.
  run("sync", base, iters);
  {
    core::MdGanConfig cfg = base;
    cfg.async = true;
    run("async (same updates)",
        cfg, std::max<std::int64_t>(iters / workers, 1));
    run("async (same rounds)", cfg, iters);
  }

  // Compression sweep.
  {
    core::MdGanConfig cfg = base;
    cfg.feedback_compression.kind = dist::CompressionKind::kQuantizeInt8;
    run("feedback int8", cfg, iters);
    cfg.feedback_compression = {dist::CompressionKind::kTopK, 0.1f};
    run("feedback top-10%", cfg, iters);
  }

  // Sparse discriminators.
  {
    core::MdGanConfig cfg = base;
    cfg.n_discriminators = std::max<std::size_t>(1, workers / 2);
    cfg.k = 1;
    run("discs = N/2", cfg, iters);
    cfg.n_discriminators = 1;
    run("discs = 1", cfg, iters);
  }

  std::printf(
      "\nshapes to check: int8 ~ uncompressed quality at 1/4 traffic; "
      "top-k trades further traffic for score; async at same rounds "
      "applies Nx updates; fewer discs reduce W->C traffic "
      "proportionally.\n");
  return 0;
}
