// Straggler / time-to-score harness (the ROADMAP "link models" item).
// MD-GAN's claims are about wall-clock time, and the place distributed
// training hurts is heterogeneity: one slow link drags the whole
// synchronous round, because the server cannot apply the generator
// update before the slowest feedback lands. This bench sweeps exactly
// that, on the simulated virtual clock (deterministic, seeded):
//
//   part A  one worker's bandwidth cut 1x/2x/5x/10x: per-round critical
//           path, per-node simulated clocks, and the slowdown of the
//           whole run relative to the homogeneous cluster;
//   part B  feedback codecs none/int8/top-k on the bandwidth-bound
//           straggler setup: compression trades score fidelity for
//           simulated W->C time, and the round time must drop
//           monotonically with the wire size;
//   part C  sync vs async server (§VII-1) under the same slow_node
//           throttle: the synchronous barrier waits for the straggler
//           before the one update of the round, while the async
//           receive loop applies one Adam step per feedback as it
//           arrives — so async buys more generator updates per
//           simulated second, the "async hides stragglers" claim made
//           measurable (mode rows report sim seconds per update);
//   part D  (skipped with --tiny) final IS/FID next to the simulated
//           time, i.e. the time-to-score rows of the sweeps, sync and
//           async.
//
// --tiny runs a seconds-scale smoke configuration (CI runs it so the
// simulated-time and async-engine paths cannot silently rot).
//
// CSV rows:
//   straggler,<slowdown>,<sim_total_s>,<mean_round_s>,<max_round_s>
//   codec,<name>,<w2c_bytes>,<sim_total_s>,<mean_round_s>
//   mode,<sync|async>,<slowdown>,<sim_total_s>,<updates>,<s_per_update>
//   time2score,<variant>,<sim_total_s>,<IS>,<FID>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dist/cluster.hpp"

using namespace mdgan;
using namespace mdgan::bench;

namespace {

struct TimedRun {
  double sim_total = 0.0;
  double mean_round = 0.0;
  double max_round = 0.0;
  std::uint64_t w_to_c_bytes = 0;
  std::int64_t updates = 0;
  dist::SimTimes clocks;
};

struct TimedRunConfig {
  gan::GanArch arch;
  std::size_t workers = 4;
  std::size_t batch = 10;
  std::int64_t iters = 40;
  std::uint64_t seed = 42;
  dist::LinkModel link;
  dist::CompressionConfig codec;
  bool async = false;
  // Modeled compute (seconds), so the async server's per-feedback
  // updates cost simulated time like the sync barrier's one does.
  double server_update_s = 0.0;
};

// Trains MD-GAN without any evaluation (the evaluator dominates tiny
// runs) and reports only the simulated-time / traffic outcome.
TimedRun timed_run(const data::InMemoryDataset& train,
                   const TimedRunConfig& rc) {
  Rng split_rng(rc.seed);
  auto shards = data::split_iid(train, rc.workers, split_rng);
  dist::Network net(rc.workers);
  net.set_link_model(rc.link);
  core::MdGanConfig cfg;
  cfg.hp.batch = rc.batch;
  cfg.k = core::k_log_n(rc.workers);
  cfg.feedback_compression = rc.codec;
  cfg.async = rc.async;
  cfg.sim_server_update_seconds = rc.server_update_s;
  core::MdGan md(rc.arch, cfg, std::move(shards), rc.seed, net);
  md.train(rc.iters);

  TimedRun out;
  out.sim_total = md.sim_seconds();
  out.updates = md.generator_updates();
  const auto& rounds = md.round_sim_seconds();
  for (double r : rounds) out.max_round = std::max(out.max_round, r);
  if (!rounds.empty()) {
    out.mean_round = std::accumulate(rounds.begin(), rounds.end(), 0.0) /
                     static_cast<double>(rounds.size());
  }
  out.w_to_c_bytes = net.totals(dist::LinkKind::kWorkerToServer).bytes;
  out.clocks = dist::sim_times_of(net);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool tiny = flags.get_bool("tiny");
  TimedRunConfig rc;
  rc.workers = flags.get_int("workers", tiny ? 3 : 4);
  rc.iters = flags.get_int("iters", tiny ? 4 : 40);
  rc.batch = flags.get_int("batch", tiny ? 8 : 10);
  rc.seed = flags.get_int("seed", 42);
  rc.arch = gan::make_arch(gan::ArchKind::kMlpMnist);
  const double latency_ms = flags.get_double("latency-ms", 5.0);
  const double mbps = flags.get_double("bandwidth-mbps", 100.0);
  const int straggler = static_cast<int>(flags.get_int("straggler", 1));

  auto train = data::make_synthetic_digits(
      rc.workers * (tiny ? 3 * rc.batch : 200), rc.seed);

  std::printf("=== stragglers: simulated round time under one slow worker "
              "(N=%zu, I=%lld, %.3gms, %.3gMbit/s, worker %d cut) ===\n",
              rc.workers, static_cast<long long>(rc.iters), latency_ms,
              mbps, straggler);

  // --- part A: bandwidth cut sweep --------------------------------------
  std::printf("csv: straggler,<slowdown>,<sim_total_s>,<mean_round_s>,"
              "<max_round_s>\n");
  const std::vector<double> slowdowns =
      tiny ? std::vector<double>{1.0, 10.0}
           : std::vector<double>{1.0, 2.0, 5.0, 10.0};
  double baseline = 0.0;
  bool monotone = true;
  double prev = -1.0;
  for (double slowdown : slowdowns) {
    rc.link = straggler_link_model(latency_ms, mbps, straggler, slowdown,
                                   rc.seed);
    rc.codec = {};
    const auto r = timed_run(train, rc);
    if (slowdown == 1.0) baseline = r.sim_total;
    std::printf("straggler,%.0f,%.4f,%.6f,%.6f\n", slowdown, r.sim_total,
                r.mean_round, r.max_round);
    std::printf("  node clocks (s): server %.4f", r.clocks.server);
    for (std::size_t w = 0; w < r.clocks.workers.size(); ++w) {
      std::printf("  w%zu %.4f", w + 1, r.clocks.workers[w]);
    }
    std::printf("%s\n", baseline > 0.0 && slowdown > 1.0
                            ? ("  (" + std::to_string(r.sim_total / baseline)
                                   .substr(0, 4) +
                               "x baseline)")
                                  .c_str()
                            : "");
    monotone = monotone && r.sim_total > prev;
    prev = r.sim_total;
  }
  std::printf("round time monotone in the straggler's slowdown: %s\n\n",
              monotone ? "yes" : "NO (unexpected)");

  // --- part B: codec sweep on the bandwidth-bound straggler setup -------
  std::printf("csv: codec,<name>,<w2c_bytes>,<sim_total_s>,"
              "<mean_round_s>\n");
  rc.link = straggler_link_model(latency_ms, mbps, straggler,
                                 slowdowns.back(), rc.seed);
  struct CodecCase {
    const char* name;
    dist::CompressionConfig cfg;
  };
  const CodecCase codecs[] = {
      {"none", {dist::CompressionKind::kNone, 0.f}},
      {"int8", {dist::CompressionKind::kQuantizeInt8, 0.f}},
      {"top-k=0.1", {dist::CompressionKind::kTopK, 0.1f}},
  };
  prev = 1e300;
  monotone = true;
  for (const auto& c : codecs) {
    rc.codec = c.cfg;
    const auto r = timed_run(train, rc);
    std::printf("codec,%s,%llu,%.4f,%.6f\n", c.name,
                static_cast<unsigned long long>(r.w_to_c_bytes),
                r.sim_total, r.mean_round);
    monotone = monotone && r.sim_total < prev;
    prev = r.sim_total;
  }
  std::printf("sim time strictly drops none -> int8 -> top-k: %s\n",
              monotone ? "yes" : "NO (unexpected)");

  // --- part C: sync vs async server under the slow_node throttle --------
  // The async engine applies one generator update per feedback arrival
  // instead of one per round barrier, so at equal rounds it lands N
  // times more updates in (nearly) the same simulated span: simulated
  // seconds *per update* must come out well below sync's.
  std::printf("\ncsv: mode,<sync|async>,<slowdown>,<sim_total_s>,"
              "<updates>,<s_per_update>\n");
  rc.codec = {};
  rc.server_update_s = 1e-4;  // make the server's applies cost sim time
  double sync_spu = 0.0, async_spu = 0.0;
  for (double slowdown : {1.0, slowdowns.back()}) {
    rc.link = straggler_link_model(latency_ms, mbps, straggler, slowdown,
                                   rc.seed);
    for (const bool async : {false, true}) {
      rc.async = async;
      const auto r = timed_run(train, rc);
      const double spu =
          r.updates > 0 ? r.sim_total / static_cast<double>(r.updates)
                        : 0.0;
      std::printf("mode,%s,%.0f,%.4f,%lld,%.6f\n",
                  async ? "async" : "sync", slowdown, r.sim_total,
                  static_cast<long long>(r.updates), spu);
      if (slowdown > 1.0) (async ? async_spu : sync_spu) = spu;
    }
  }
  rc.async = false;
  rc.server_update_s = 0.0;
  std::printf("async spends less sim time per generator update under the "
              "straggler: %s\n",
              async_spu < sync_spu ? "yes" : "NO (unexpected)");

  // --- part D: time-to-score (needs the evaluator; skipped in --tiny) ---
  if (!tiny) {
    std::printf("\ncsv: time2score,<variant>,<sim_total_s>,<IS>,<FID>\n");
    auto test = data::make_synthetic_digits(512, rc.seed + 1);
    metrics::Evaluator evaluator(train, test, {64, 3, 64, 1e-3f}, 256,
                                 rc.seed);
    gan::GanHyperParams hp;
    hp.batch = rc.batch;
    for (const bool async : {false, true}) {
      for (double slowdown : {1.0, slowdowns.back()}) {
        RunContext ctx{train, evaluator, rc.arch, rc.iters,
                       /*eval_every=*/rc.iters, rc.seed};
        ctx.link = straggler_link_model(latency_ms, mbps, straggler,
                                        slowdown, rc.seed);
        MdGanRunOptions opts;
        opts.k = core::k_log_n(rc.workers);
        opts.async = async;
        const std::string label = std::string(async ? "async" : "sync") +
                                  " slowdown=" + std::to_string(slowdown);
        auto s = run_md_gan(ctx, hp, rc.workers, opts, label);
        const auto& last = s.points.back();
        std::printf("time2score,%s-slowdown=%.0f,%.4f,%.4f,%.4f\n",
                    async ? "async" : "sync", slowdown, s.sim_total,
                    last.scores.inception_score, last.scores.fid);
      }
    }
  }
  return 0;
}
